//! Integration tests for the baseline simulators against the shared
//! dataset (Exp-2 and Exp-4 plumbing).

use svqa::baselines::splitters::{SentenceSplitter, SplitterModel};
use svqa::baselines::vqa_models::{BaselineVqa, VqaModel};
use svqa::dataset::groundtruth::GroundTruth;
use svqa::dataset::vqav2::{generate_vqav2, VqaV2Config};

fn vqav2() -> svqa::dataset::vqav2::VqaV2 {
    generate_vqav2(VqaV2Config {
        image_count: 600,
        per_type: 12,
        seed: 5,
    })
}

#[test]
fn baselines_answer_every_question() {
    let v = vqav2();
    let gt = GroundTruth::new(&v.images, &v.kg);
    for model in VqaModel::ALL {
        let (answers, clock) =
            BaselineVqa::new(model, 1).answer_dataset(&gt, &v.specs, v.images.len());
        assert_eq!(answers.len(), v.questions.len());
        assert!(answers.iter().all(Option::is_some));
        assert!(clock.elapsed_ms() > 0.0);
    }
}

#[test]
fn baseline_accuracy_ordering_roughly_matches_table4() {
    // OFA should be the strongest baseline overall (Table IV), with enough
    // sampling slack for a small question set.
    let v = vqav2();
    let gt = GroundTruth::new(&v.images, &v.kg);
    let as_mvqa = svqa::dataset::mvqa::Mvqa {
        images: v.images.clone(),
        kg: v.kg.clone(),
        questions: v.questions.clone(),
        specs: v.specs.clone(),
        config: svqa::dataset::mvqa::MvqaConfig::default(),
    };
    let overall = |model| {
        let (answers, _) =
            BaselineVqa::new(model, 7).answer_dataset(&gt, &v.specs, v.images.len());
        as_mvqa.score_answers(&answers).3
    };
    let ofa = overall(VqaModel::Ofa);
    let vb = overall(VqaModel::VisualBert);
    assert!(
        ofa + 0.1 >= vb,
        "OFA ({ofa}) should not trail VisualBert ({vb}) meaningfully"
    );
}

#[test]
fn baseline_latency_ordering_matches_table4() {
    // ViLT > VisualBert > OFA in total latency (Table IV). The ordering is
    // driven by per-image inference cost, so it holds at the paper's image
    // scale (4,233); at toy scale OFA's larger load cost can dominate.
    let v = vqav2();
    let gt = GroundTruth::new(&v.images, &v.kg);
    let latency = |model| {
        BaselineVqa::new(model, 2)
            .answer_dataset(&gt, &v.specs, 4233)
            .1
            .elapsed_ms()
    };
    let vilt = latency(VqaModel::Vilt);
    let vb = latency(VqaModel::VisualBert);
    let ofa = latency(VqaModel::Ofa);
    assert!(vilt > vb && vb > ofa, "vilt={vilt} vb={vb} ofa={ofa}");
}

#[test]
fn splitters_decompose_mvqa_questions() {
    let mvqa = svqa_dataset::Mvqa::generate_small(500, 9);
    let splitter = SentenceSplitter::new(SplitterModel::AbcdMlp);
    let questions: Vec<&str> = mvqa
        .questions
        .iter()
        .filter(|q| !q.adversarial)
        .map(|q| q.question.as_str())
        .collect();
    let (splits, clock) = splitter.split_batch(&questions);
    assert_eq!(splits.len(), questions.len());
    // Clause counts from the splitter match the dataset's bookkeeping.
    for (pair, split) in mvqa
        .questions
        .iter()
        .filter(|q| !q.adversarial)
        .zip(&splits)
    {
        // Possessive expansions are query-graph vertices but not textual
        // clauses, so the split count may be one lower.
        assert!(
            split.len() == pair.clauses || split.len() + 1 == pair.clauses,
            "{:?}: split {} vs clauses {}",
            pair.question,
            split.len(),
            pair.clauses
        );
    }
    // Load cost paid exactly once.
    let (load, per_q) = SplitterModel::AbcdMlp.cost();
    let expected = load + per_q * questions.len() as f64;
    assert!((clock.elapsed_ms() - expected).abs() < 1e-6);
}
