//! Chaos integration tests: deterministic fault injection end-to-end.
//!
//! Each test installs a seeded [`FaultPlan`] (the guard serializes
//! installers process-wide, so tests never see each other's plans) and
//! checks the degradation contract: requests complete, degraded answers
//! are labeled and counted, circuit breakers open and recover, and the
//! same seed reproduces the identical fault sequence.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::OnceLock;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use svqa::dataset::Mvqa;
use svqa::fault::{self, BreakerState, FaultKind, FaultPlan, Source, SiteFault};
use svqa::telemetry::counter;
use svqa::{QueryServer, ServeConfig, Svqa, SvqaConfig};

fn counter_value(name: &str) -> u64 {
    svqa::telemetry::global()
        .snapshot()
        .counters
        .get(name)
        .copied()
        .unwrap_or(0)
}

fn kg_drop_plan(seed: u64, rate: f64) -> FaultPlan {
    FaultPlan::new(seed).with_fault(
        fault::site::SOURCE_KG,
        SiteFault::new(FaultKind::DropResult, rate),
    )
}

/// One HTTP/1.1 request; returns (status code, headers, body).
fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\n\
         Content-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response.split_once("\r\n\r\n").expect("header separator");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    (status, head.to_owned(), body.to_owned())
}

fn start_server(system: Svqa, config: ServeConfig) -> (SocketAddr, JoinHandle<std::io::Result<()>>) {
    let server = QueryServer::bind(system, "127.0.0.1:0", config).expect("bind");
    let addr = server.local_addr().expect("local addr");
    let handle = std::thread::spawn(move || server.serve());
    (addr, handle)
}

fn shutdown_and_join(addr: SocketAddr, handle: JoinHandle<std::io::Result<()>>) {
    let (status, _, _) = http(addr, "POST", "/shutdown", "");
    assert_eq!(status, 200);
    handle
        .join()
        .expect("serve thread panicked")
        .expect("serve returned an error");
}

#[test]
fn ten_percent_kg_chaos_degrades_deterministically_and_is_counted() {
    let mvqa = Mvqa::generate_small(250, 77);
    // Breaker disabled: this test measures the pure per-question fault
    // sequence, not wall-clock breaker dynamics (covered below).
    let mut config = SvqaConfig::default();
    config.degrade.breaker.failure_threshold = u32::MAX;
    let system = Svqa::build(&mvqa.images, &mvqa.kg, config);

    // Every question, answered under a seeded 10% KG-drop plan. Returns
    // the per-question status labels plus the injector's bookkeeping.
    let run = || {
        let guard = fault::install(kg_drop_plan(0xD00D, 0.10));
        let degraded_before = counter_value(counter::ANSWERS_DEGRADED);
        let t0 = Instant::now();
        let mut statuses = Vec::with_capacity(mvqa.questions.len());
        for q in &mvqa.questions {
            let t_question = Instant::now();
            let deadline = t_question + Duration::from_secs(2);
            match system.answer_guarded(&q.question, None, Some(deadline)) {
                Ok(g) => {
                    if let svqa::AnswerStatus::Degraded {
                        missing_sources,
                        confidence_penalty,
                    } = &g.status
                    {
                        assert_eq!(missing_sources, &["kg".to_owned()], "{:?}", g.status);
                        assert!(*confidence_penalty > 0.0);
                    }
                    statuses.push(g.status.label().to_owned());
                }
                Err(e) => statuses.push(format!("error:{e}")),
            }
            assert!(
                t_question.elapsed() < Duration::from_secs(2),
                "question blew straight through its deadline"
            );
        }
        assert!(t0.elapsed() < Duration::from_secs(60));
        let degraded_delta = counter_value(counter::ANSWERS_DEGRADED) - degraded_before;
        let fired = guard.injector().faults_fired();
        let draws = guard.injector().draws_at(fault::site::SOURCE_KG);
        drop(guard);
        (statuses, fired, draws, degraded_delta)
    };

    let (statuses_a, fired_a, draws_a, degraded_a) = run();
    let degraded_count = statuses_a.iter().filter(|s| *s == "degraded").count() as u64;
    assert!(degraded_count >= 1, "10% plan never degraded: {statuses_a:?}");
    assert!(
        statuses_a.iter().any(|s| s == "ok"),
        "10% plan degraded everything: {statuses_a:?}"
    );
    assert_eq!(
        degraded_a, degraded_count,
        "answers_degraded counter disagrees with the labeled responses"
    );
    // One KG probe per question that survives parse + lint.
    assert!(draws_a > 0 && draws_a <= mvqa.questions.len() as u64, "{draws_a}");

    // Same seed, same question sequence: the identical fault sequence,
    // decision for decision.
    let (statuses_b, fired_b, draws_b, _) = run();
    assert_eq!(statuses_a, statuses_b);
    assert_eq!(fired_a, fired_b);
    assert_eq!(draws_a, draws_b);
}

#[test]
fn breaker_opens_after_consecutive_faults_and_recovers_via_half_open() {
    let mvqa = Mvqa::generate_small(60, 3);
    let mut config = SvqaConfig::default();
    config.degrade.breaker.failure_threshold = 2;
    config.degrade.breaker.cooldown_ms = 250;
    config.degrade.retry.max_retries = 0;
    let system = Svqa::build(&mvqa.images, &mvqa.kg, config);
    let question = &mvqa.questions[0].question;
    let kg_state = |system: &Svqa| {
        system
            .breaker_states()
            .into_iter()
            .find(|(s, _)| *s == Source::Kg)
            .map(|(_, st)| st)
            .expect("kg breaker")
    };

    // The KG probe fails exactly twice, then the rule disarms — so the
    // breaker opens on the second failure and the half-open probe that
    // follows the cooldown succeeds.
    let plan = FaultPlan::new(11).with_fault(
        fault::site::SOURCE_KG,
        SiteFault::limited(FaultKind::Error, 1.0, 2),
    );
    let guard = fault::install(plan);
    assert_eq!(kg_state(&system), BreakerState::Closed);

    let first = system.answer_guarded(question, None, None).expect("degraded answer");
    assert!(first.status.is_degraded(), "{:?}", first.status);
    assert_eq!(kg_state(&system), BreakerState::Closed, "one failure of two");

    let second = system.answer_guarded(question, None, None).expect("degraded answer");
    assert!(second.status.is_degraded());
    assert_eq!(kg_state(&system), BreakerState::Open, "threshold reached");
    assert_eq!(system.health_status(), "degraded");

    // While open, the source is skipped without drawing: still degraded.
    let rejected = system.answer_guarded(question, None, None).expect("degraded answer");
    assert!(rejected.status.is_degraded());
    assert_eq!(guard.injector().draws_at(fault::site::SOURCE_KG), 2);

    // Past the cooldown the breaker half-opens; the probe (fault rule now
    // exhausted) succeeds and closes it again.
    std::thread::sleep(Duration::from_millis(300));
    assert_eq!(kg_state(&system), BreakerState::HalfOpen);
    let recovered = system.answer_guarded(question, None, None).expect("full answer");
    assert!(!recovered.status.is_degraded(), "{:?}", recovered.status);
    assert_eq!(kg_state(&system), BreakerState::Closed);
    assert_eq!(system.health_status(), "ok");
    drop(guard);
}

#[test]
fn poisoned_questions_do_not_shrink_the_worker_pool() {
    let mvqa = Mvqa::generate_small(60, 3);
    let system = Svqa::build(&mvqa.images, &mvqa.kg, SvqaConfig::default());
    let (addr, handle) = start_server(
        system,
        ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        },
    );
    // Exactly two poisoned jobs — enough to kill the *entire* pool if a
    // worker panic took its thread down.
    let plan = FaultPlan::new(21).with_fault(
        fault::site::SERVE_WORKER,
        SiteFault::limited(FaultKind::Error, 1.0, 2),
    );
    let guard = fault::install(plan);
    let panics_before = counter_value(counter::SERVER_WORKER_PANICS);

    let request = r#"{"question": "Does the dog appear in the car?"}"#;
    for _ in 0..2 {
        let (status, _, body) = http(addr, "POST", "/ask", request);
        assert_eq!(status, 500, "{body}");
        assert!(body.contains("panic"), "{body}");
    }
    assert_eq!(counter_value(counter::SERVER_WORKER_PANICS) - panics_before, 2);

    // Both workers survived their panics: the pool still answers (with a
    // finite deadline, so a dead pool would fail fast as 504, not hang).
    for _ in 0..4 {
        let (status, _, body) = http(
            addr,
            "POST",
            "/ask",
            r#"{"question": "Does the dog appear in the car?", "deadline_ms": 5000}"#,
        );
        assert_eq!(status, 200, "{body}");
    }
    let (_, _, metrics) = http(addr, "GET", "/metrics", "");
    assert!(
        metrics.contains("svqa_server_worker_panics_total"),
        "{metrics}"
    );
    drop(guard);
    shutdown_and_join(addr, handle);
}

#[test]
fn dropped_reply_is_a_500_not_a_hung_connection() {
    let mvqa = Mvqa::generate_small(60, 3);
    let system = Svqa::build(&mvqa.images, &mvqa.kg, SvqaConfig::default());
    let (addr, handle) = start_server(system, ServeConfig::default());
    let plan = FaultPlan::new(31).with_fault(
        fault::site::SERVE_WORKER,
        SiteFault::limited(FaultKind::DropResult, 1.0, 1),
    );
    let guard = fault::install(plan);

    let request = r#"{"question": "Does the dog appear in the car?"}"#;
    let (status, _, body) = http(addr, "POST", "/ask", request);
    assert_eq!(status, 500, "{body}");
    assert!(body.contains("dropped"), "{body}");
    let (status, _, body) = http(addr, "POST", "/ask", request);
    assert_eq!(status, 200, "{body}");
    drop(guard);
    shutdown_and_join(addr, handle);
}

#[test]
fn all_sources_down_is_503_with_retry_after_then_healthz_recovers() {
    let mvqa = Mvqa::generate_small(60, 3);
    let mut config = SvqaConfig::default();
    // A long cooldown keeps the breakers observably Open while we assert.
    config.degrade.breaker.cooldown_ms = 800;
    let system = Svqa::build(&mvqa.images, &mvqa.kg, config);
    let (addr, handle) = start_server(system, ServeConfig::default());
    let plan = FaultPlan::uniform(
        41,
        &[fault::site::SOURCE_KG, fault::site::SOURCE_SCENE],
        FaultKind::DropResult,
        1.0,
    );
    let guard = fault::install(plan);

    let request = r#"{"question": "Does the dog appear in the car?"}"#;
    // Threshold (default 3) consecutive failures per source open both
    // breakers; every request is refused with a typed 503 either way.
    for _ in 0..3 {
        let (status, head, body) = http(addr, "POST", "/ask", request);
        assert_eq!(status, 503, "{body}");
        assert!(head.contains("Retry-After"), "{head}");
        let err: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert_eq!(err["code"].as_str(), Some("unavailable"), "{body}");
    }
    let (status, _, body) = http(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    let health: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert_eq!(health["status"].as_str(), Some("unhealthy"), "{body}");
    assert_eq!(health["sources"]["kg"].as_str(), Some("open"), "{body}");
    assert_eq!(health["fault_plan_armed"].as_bool(), Some(true), "{body}");

    // Chaos over: past the cooldown the half-open probes succeed, the
    // breakers close, and service is fully restored.
    drop(guard);
    std::thread::sleep(Duration::from_millis(900));
    let (status, _, body) = http(addr, "POST", "/ask", request);
    assert_eq!(status, 200, "{body}");
    let answered: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert_eq!(answered["status"].as_str(), Some("ok"), "{body}");
    let (_, _, body) = http(addr, "GET", "/healthz", "");
    let health: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert_eq!(health["status"].as_str(), Some("ok"), "{body}");

    shutdown_and_join(addr, handle);
}

#[test]
fn degraded_ask_response_is_labeled_over_http() {
    let mvqa = Mvqa::generate_small(60, 3);
    let mut config = SvqaConfig::default();
    config.degrade.breaker.failure_threshold = u32::MAX;
    let system = Svqa::build(&mvqa.images, &mvqa.kg, config);
    let (addr, handle) = start_server(system, ServeConfig::default());
    let guard = fault::install(kg_drop_plan(51, 1.0));

    let (status, _, body) = http(
        addr,
        "POST",
        "/ask",
        r#"{"question": "Does the dog appear in the car?"}"#,
    );
    assert_eq!(status, 200, "{body}");
    let answered: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert_eq!(answered["status"].as_str(), Some("degraded"), "{body}");
    assert_eq!(
        answered["missing_sources"][0].as_str(),
        Some("kg"),
        "{body}"
    );
    assert!(answered["confidence_penalty"].as_f64().unwrap_or(0.0) > 0.0, "{body}");
    assert!(answered["answer_text"].as_str().is_some(), "{body}");

    let (_, _, metrics) = http(addr, "GET", "/metrics", "");
    assert!(metrics.contains("svqa_answers_degraded_total"), "{metrics}");
    assert!(metrics.contains("svqa_faults_injected_total"), "{metrics}");
    drop(guard);
    shutdown_and_join(addr, handle);
}

mod props {
    use super::*;
    use proptest::prelude::*;

    /// A shared world for the property sweep: built once, before any plan
    /// in this test is armed, so the build itself stays fault-free.
    fn shared() -> &'static (Svqa, Mvqa) {
        static WORLD: OnceLock<(Svqa, Mvqa)> = OnceLock::new();
        WORLD.get_or_init(|| {
            let mvqa = Mvqa::generate_small(40, 3);
            let system = Svqa::build(&mvqa.images, &mvqa.kg, SvqaConfig::default());
            (system, mvqa)
        })
    }

    fn kind_of(code: u8, latency_ms: u64) -> Option<FaultKind> {
        match code % 5 {
            0 => Some(FaultKind::Error),
            1 => Some(FaultKind::Latency(latency_ms)),
            2 => Some(FaultKind::DropResult),
            3 => Some(FaultKind::CorruptLabel),
            _ => None, // leave the site clean
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        // The robustness contract under arbitrary seeded plans: `answer_guarded`
        // never panics and never wedges — every question returns an answer
        // (possibly degraded) or a typed error within bounded wall-time.
        #[test]
        fn arbitrary_fault_plans_never_panic_or_wedge(
            seed in 0u64..u64::MAX,
            rules in prop::collection::vec((0.0f64..0.6, 0u8..10, 0u64..50), 9),
        ) {
            let (system, mvqa) = shared();
            let mut plan = FaultPlan::new(seed);
            for (site, (p, code, latency)) in fault::site::ALL.iter().zip(&rules) {
                if let Some(kind) = kind_of(*code, *latency) {
                    plan = plan.with_fault(site, SiteFault::new(kind, *p));
                }
            }
            let guard = fault::install(plan);
            for q in mvqa.questions.iter().take(4) {
                let t0 = Instant::now();
                let deadline = Instant::now() + Duration::from_millis(500);
                let result = system.answer_guarded(&q.question, None, Some(deadline));
                prop_assert!(
                    t0.elapsed() < Duration::from_secs(5),
                    "wedged for {:?} under {:?}",
                    t0.elapsed(),
                    guard.injector().plan()
                );
                if let Err(e) = result {
                    // A typed error, with a non-empty rendering.
                    prop_assert!(!e.to_string().is_empty());
                }
            }
            drop(guard);
        }
    }
}
