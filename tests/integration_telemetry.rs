//! End-to-end telemetry: a real build + batch run must light up every
//! pipeline stage, and `svqa-cli eval --metrics` must emit a parseable
//! snapshot with per-stage histograms and consistent cache counters.

use svqa::telemetry::{counter, global, stage, MetricsSnapshot, QueryOutcome};
use svqa::{Svqa, SvqaConfig};
use svqa_dataset::Mvqa;

#[test]
fn build_and_batch_record_every_stage() {
    let mvqa = Mvqa::generate_small(120, 9);
    let system = Svqa::build(&mvqa.images, &mvqa.kg, SvqaConfig::default());
    let questions = [
        "Does the dog appear in the car?",
        "How many dogs are in the car?",
        "Does the dog appear in the car?",
        "the red dog", // parse failure, must be traced too
    ];
    let batch = system.answer_batch(&questions);

    // Every one of the paper's five per-question stages recorded at least
    // one non-zero duration into the global recorder (sgg + aggregate run
    // at build time; parse/decompose per question; schedule/match in the
    // batch). Stage timings are wall-clock so every observation is > 0ns.
    for s in stage::PIPELINE {
        assert!(global().span_count(s) > 0, "no spans recorded for {s:?}");
        assert!(global().span_total_ns(s) > 0, "zero duration for {s:?}");
    }
    assert!(global().span_count(stage::SGG) >= 120);

    // Per-question traces: all carry a parse stage; executed ones a match
    // stage; the malformed question ends as a parse error.
    assert_eq!(batch.traces.len(), questions.len());
    for trace in &batch.traces {
        assert!(trace.stage_nanos(stage::PARSE).is_some(), "{trace:?}");
    }
    assert_eq!(batch.traces[0].outcome, QueryOutcome::Answered);
    assert!(batch.traces[0].stage_nanos(stage::MATCH).is_some());
    assert_eq!(batch.traces[3].outcome, QueryOutcome::ParseError);
    assert!(batch.traces[3].stage_nanos(stage::MATCH).is_none());

    // Cache counters: the batch total was pushed into the global recorder,
    // and the identical repeated question guarantees path traffic.
    assert!(batch.cache_stats.total_lookups() > 0);
    assert!(batch.cache_stats.path_hits > 0, "{:?}", batch.cache_stats);
    assert!(
        global().counter_value(counter::CACHE_PATH_HITS) >= batch.cache_stats.path_hits
    );
    assert!(
        global().counter_value(counter::CACHE_SCOPE_MISSES)
            >= batch.cache_stats.scope_misses
    );

    // Question counters line up with the batch outcome.
    let answered = batch.answers.iter().filter(|a| a.is_ok()).count() as u64;
    let failed = batch.answers.len() as u64 - answered;
    assert!(answered > 0 && failed > 0);
    assert!(global().counter_value(counter::QUESTIONS_ANSWERED) >= answered);
    assert!(global().counter_value(counter::QUESTIONS_FAILED) >= failed);
    assert!(global().counter_value(counter::QUESTIONS_PARSED) >= answered);
}

#[test]
fn traced_single_question_reports_exact_cache_delta() {
    use svqa::executor::{CacheGranularity, EvictionPolicy, ShardedCache};

    let mvqa = Mvqa::generate_small(60, 3);
    let system = Svqa::build(&mvqa.images, &mvqa.kg, SvqaConfig::default());
    let cache = ShardedCache::new(CacheGranularity::Both, EvictionPolicy::Lfu, 100, 4);
    let q = "Does the dog appear in the car?";
    let (first, cold) = system.answer_traced(q, Some(&cache));
    first.unwrap();
    assert_eq!(cold.cache.total_hits(), 0, "{:?}", cold.cache);
    assert!(cold.cache.total_lookups() > 0);

    let (second, warm) = system.answer_traced(q, Some(&cache));
    second.unwrap();
    assert!(warm.cache.total_hits() > 0, "{:?}", warm.cache);
    let line = warm.summary_line();
    assert!(line.contains("[ok]"), "{line}");
    assert!(line.contains("parse"), "{line}");
    assert!(line.contains("match"), "{line}");
}

#[test]
fn cli_eval_metrics_json_has_all_stages_and_rates() {
    let out = std::env::temp_dir().join(format!("svqa_metrics_{}.json", std::process::id()));
    let status = std::process::Command::new(env!("CARGO_BIN_EXE_svqa-cli"))
        .args([
            "eval",
            "--images",
            "40",
            "--seed",
            "5",
            "--metrics",
            out.to_str().unwrap(),
        ])
        .status()
        .expect("svqa-cli runs");
    assert!(status.success(), "svqa-cli eval failed: {status:?}");

    let text = std::fs::read_to_string(&out).expect("metrics file written");
    let _ = std::fs::remove_file(&out);
    let snap: MetricsSnapshot = serde_json::from_str(&text).expect("valid metrics JSON");

    // All five pipeline stages present with non-zero durations and sane
    // percentile ordering.
    for s in stage::PIPELINE {
        let h = snap
            .spans
            .get(s)
            .unwrap_or_else(|| panic!("stage {s:?} missing from {:?}", snap.spans.keys()));
        assert!(h.count > 0, "{s}: {h:?}");
        assert!(h.sum_ns > 0, "{s}: {h:?}");
        assert!(h.p50_ns > 0, "{s}: {h:?}");
        assert!(h.p50_ns <= h.p95_ns && h.p95_ns <= h.p99_ns, "{s}: {h:?}");
        assert!(h.min_ns <= h.p50_ns && h.p99_ns <= h.max_ns, "{s}: {h:?}");
    }
    // Build-time stage also recorded (one span per image).
    assert_eq!(snap.spans[stage::SGG].count, 40);

    // Counters: questions flowed through, and the cache summary is
    // internally consistent with its raw counters.
    assert!(snap.counters[counter::QUESTIONS_PARSED] > 0);
    assert!(snap.counters[counter::QUESTIONS_ANSWERED] > 0);
    assert!(snap.counters.contains_key(counter::QUESTIONS_FAILED));
    assert_eq!(snap.counters[counter::SCENE_GRAPHS_BUILT], 40);
    let cache = snap.cache;
    assert!(cache.stats.total_lookups() > 0);
    assert!((0.0..=1.0).contains(&cache.overall_hit_rate));
    assert!((cache.overall_hit_rate - cache.stats.hit_rate()).abs() < 1e-12);
    assert!((cache.scope_hit_rate - cache.stats.scope_hit_rate()).abs() < 1e-12);
}
