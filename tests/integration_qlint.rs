//! Integration tests for the static query linter (`svqa-qlint`) wired
//! through the full pipeline: typo'd questions are refused before the
//! executor runs, clean questions are untouched, and the generated MVQA
//! corpus stays statically clean.

use svqa::executor::executor::QueryGraphExecutor;
use svqa::qlint::{codes, Severity};
use svqa::qparser::{Dependency, NounPhrase, QueryEdge, QueryGraph, QuestionType, Spoc};
use svqa::{Svqa, SvqaConfig, SvqaError};
use svqa_dataset::Mvqa;

fn world() -> (Svqa, Mvqa) {
    let mvqa = Mvqa::generate_small(60, 3);
    let system = Svqa::build(&mvqa.images, &mvqa.kg, SvqaConfig::default());
    (system, mvqa)
}

#[test]
fn typo_predicate_is_rejected_before_execution_with_a_suggestion() {
    let (system, _) = world();

    let report = system.lint("Is the dog weering the hat?").expect("parses");
    assert!(report.has_errors(), "{}", report.render());
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == codes::UNKNOWN_PREDICATE)
        .expect("unknown-predicate diagnostic");
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.suggestion.as_deref(), Some("wear"), "{}", report.render());

    // The same question through `answer` short-circuits with the report.
    match system.answer("Is the dog weering the hat?") {
        Err(SvqaError::Lint(rejected)) => assert_eq!(rejected, report),
        other => panic!("expected a lint rejection, got {other:?}"),
    }
}

#[test]
fn clean_question_lints_clean_and_answers_exactly_like_the_bare_executor() {
    let (system, _) = world();
    let question = "Does the dog appear in the car?";

    let report = system.lint(question).expect("parses");
    assert!(report.is_clean(), "{}", report.render());

    // The lint gate must not perturb answers: the pipeline's result equals
    // a direct executor run over the same query graph.
    let gq = svqa::qparser::QueryGraphGenerator::new()
        .generate(question)
        .expect("parses");
    let (bare, _) = QueryGraphExecutor::new(system.merged_graph())
        .execute_explained(&gq)
        .expect("executes");
    assert_eq!(system.answer(question).expect("answers"), bare);
}

#[test]
fn generated_corpus_stays_statically_clean() {
    let (system, mvqa) = world();
    for q in &mvqa.questions {
        // Questions the parser rejects are the parser's business; every
        // parsed one must clear the lint gate, so answering never trips
        // over a lint rejection.
        if let Ok(report) = system.lint(&q.question) {
            assert!(!report.has_errors(), "{}: {}", q.question, report.render());
            assert!(
                !matches!(system.answer(&q.question), Err(SvqaError::Lint(_))),
                "{} was lint-rejected",
                q.question
            );
        }
    }
}

#[test]
fn hand_built_malformed_graphs_get_exact_codes() {
    let (system, _) = world();
    let spoc = |s: &str, p: &str, o: &str| Spoc {
        subject: if s.is_empty() { NounPhrase::default() } else { NounPhrase::simple(s) },
        predicate: p.to_owned(),
        object: if o.is_empty() { NounPhrase::default() } else { NounPhrase::simple(o) },
        ..Spoc::default()
    };

    // A dependency cycle: neither quad can execute first.
    let cyclic = QueryGraph {
        vertices: vec![spoc("dog", "in", "car"), spoc("man", "wear", "hat")],
        edges: vec![
            QueryEdge { provider: 0, consumer: 1, dependency: Dependency::S2S },
            QueryEdge { provider: 1, consumer: 0, dependency: Dependency::O2O },
        ],
        question_type: QuestionType::Judgment,
        question: "cyclic".into(),
    };
    let report = system.lint_graph(&cyclic);
    assert_eq!(report.diagnostics.len(), 1, "{}", report.render());
    assert_eq!(report.diagnostics[0].code, codes::CYCLIC_DEPENDENCY);
    assert!(report.has_errors());

    // A reasoning question with no marked answer slot: suspicious but
    // executable (the executor has a fallback), so Warning not Error.
    let unbound = QueryGraph {
        vertices: vec![spoc("dog", "in", "car")],
        edges: vec![],
        question_type: QuestionType::Reasoning,
        question: "unbound".into(),
    };
    let report = system.lint_graph(&unbound);
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == codes::UNBOUND_ANSWER_SLOT)
        .expect("unbound-answer-slot diagnostic");
    assert_eq!(d.severity, Severity::Warning);
    assert!(!report.has_errors());

    // An edge pointing at a vertex that does not exist.
    let dangling = QueryGraph {
        vertices: vec![spoc("dog", "in", "car")],
        edges: vec![QueryEdge { provider: 0, consumer: 9, dependency: Dependency::S2S }],
        question_type: QuestionType::Judgment,
        question: "dangling".into(),
    };
    let report = system.lint_graph(&dangling);
    assert_eq!(report.diagnostics[0].code, codes::DANGLING_EDGE);
    assert!(report.has_errors());
}

#[test]
fn batch_isolates_lint_rejections_per_question() {
    let (system, _) = world();
    let cache = svqa::executor::ShardedCache::new(
        svqa::executor::CacheGranularity::Both,
        svqa::executor::EvictionPolicy::Lfu,
        64,
        4,
    );
    let questions = [
        "Does the dog appear in the car?",
        "Is the dog weering the hat?",
        "Does the dog appear in the car?",
    ];
    let outcome = system.answer_batch_cached(&questions, &cache);
    assert_eq!(outcome.answers.len(), 3);
    assert!(outcome.answers[0].is_ok(), "{:?}", outcome.answers[0]);
    assert!(
        matches!(&outcome.answers[1], Err(SvqaError::Lint(r)) if r.has_errors()),
        "{:?}",
        outcome.answers[1]
    );
    assert!(outcome.answers[2].is_ok(), "{:?}", outcome.answers[2]);
}

#[test]
fn profiled_run_carries_lint_stage_and_diagnostics() {
    let (system, _) = world();

    // A clean question records the lint stage but attaches no diagnostics.
    let run = system
        .answer_profiled("Does the dog appear in the car?", None)
        .expect("answers");
    assert!(
        run.profile.stages.iter().any(|s| s.stage == "lint"),
        "no lint stage in profile"
    );
    assert!(run.profile.lint.is_empty());

    // A warning-level finding rides along in the profile (and the tree).
    let run = system
        .answer_profiled("How many dogs are in the car?", None)
        .expect("answers");
    let tree = run.profile.render_tree();
    assert!(tree.contains("stage lint"), "{tree}");
}
