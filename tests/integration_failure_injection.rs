//! Failure-injection tests: the pipeline must degrade, not panic, when a
//! subsystem is crippled.

use svqa::vision::detector::DetectorConfig;
use svqa::{evaluate_on_mvqa, Svqa, SvqaConfig};
use svqa_dataset::Mvqa;
use svqa_graph::Graph;

fn mvqa() -> Mvqa {
    Mvqa::generate_small(250, 77)
}

#[test]
fn blind_detector_degrades_gracefully() {
    // detect_prob = 0: no scene evidence at all. Every judgment becomes
    // "No", counting 0, reasoning Unknown — and nothing panics.
    let mvqa = mvqa();
    let mut config = SvqaConfig::default();
    config.sgg.detector = DetectorConfig {
        detect_prob: 0.0,
        spurious_rate: 0.0,
        ..DetectorConfig::default()
    };
    let system = Svqa::build(&mvqa.images, &mvqa.kg, config);
    let outcome = evaluate_on_mvqa(&system, &mvqa);
    // Only all-No judgments can score.
    assert_eq!(outcome.counting, 0.0, "{outcome:?}");
    assert_eq!(outcome.reasoning, 0.0, "{outcome:?}");
    for q in mvqa.questions.iter().take(10) {
        let _ = system.answer(&q.question); // must not panic
    }
}

#[test]
fn maximal_label_confusion_still_executes() {
    let mvqa = mvqa();
    let mut config = SvqaConfig::default();
    config.sgg.detector.confusion_prob = 1.0;
    let system = Svqa::build(&mvqa.images, &mvqa.kg, config);
    for q in mvqa.questions.iter().take(20) {
        let _ = system.answer(&q.question);
    }
    let outcome = evaluate_on_mvqa(&system, &mvqa);
    // Accuracy collapses versus the healthy pipeline but stays a valid
    // fraction.
    assert!((0.0..=1.0).contains(&outcome.overall));
}

#[test]
fn empty_knowledge_graph_kills_kg_questions_only() {
    let mvqa = mvqa();
    let empty_kg = Graph::new();
    let system = Svqa::build(&mvqa.images, &empty_kg, SvqaConfig::default());
    system.merged_graph().validate().unwrap();
    // Knowledge-dependent question: no taxonomy, no girlfriend facts.
    let a = system
        .answer("How many wizards are near Harry Potter's girlfriend?")
        .unwrap();
    assert_eq!(a, svqa::Answer::Count(0));
    // A purely visual question still works (exact labels need no
    // taxonomy).
    let visual = system.answer("Does the dog appear in the car?");
    assert!(visual.is_ok());
}

#[test]
fn extreme_jitter_hurts_but_does_not_break() {
    let mvqa = mvqa();
    let mut config = SvqaConfig::default();
    config.sgg.detector.bbox_jitter = 0.9;
    let healthy = Svqa::build(&mvqa.images, &mvqa.kg, SvqaConfig::default());
    let jittery = Svqa::build(&mvqa.images, &mvqa.kg, config);
    let h = evaluate_on_mvqa(&healthy, &mvqa);
    let j = evaluate_on_mvqa(&jittery, &mvqa);
    assert!(
        j.overall <= h.overall + 0.05,
        "jitter should not help: healthy {} vs jittery {}",
        h.overall,
        j.overall
    );
}

#[test]
fn empty_image_set_is_knowledge_only() {
    let mvqa = mvqa();
    let system = Svqa::build(&[], &mvqa.kg, SvqaConfig::default());
    // Knowledge-graph queries still answer.
    let a = system
        .answer("How many wizards are near Harry Potter's girlfriend?")
        .unwrap();
    assert_eq!(a, svqa::Answer::Count(0)); // no co-appearance evidence
    // The merged graph is exactly the KG.
    assert_eq!(
        system.merged_graph().vertex_count(),
        mvqa.kg.vertex_count()
    );
}

#[test]
fn tiny_cache_pool_never_corrupts_answers() {
    use svqa::executor::cache::{CacheGranularity, EvictionPolicy};
    use svqa::executor::scheduler::{QueryScheduler, SchedulerConfig};
    use svqa::qparser::QueryGraphGenerator;

    let mvqa = mvqa();
    let system = Svqa::build(&mvqa.images, &mvqa.kg, SvqaConfig::default());
    let generator = QueryGraphGenerator::new();
    let graphs: Vec<_> = mvqa
        .questions
        .iter()
        .take(30)
        .filter_map(|q| generator.generate(&q.question).ok())
        .collect();
    let baseline = QueryScheduler::new(SchedulerConfig {
        granularity: CacheGranularity::None,
        ..SchedulerConfig::default()
    })
    .run(system.merged_graph(), &graphs);
    // A pathological pool of 1 item thrashes constantly but must stay
    // correct.
    let thrashing = QueryScheduler::new(SchedulerConfig {
        granularity: CacheGranularity::Both,
        policy: EvictionPolicy::Lfu,
        pool_size: 1,
        ..SchedulerConfig::default()
    })
    .run(system.merged_graph(), &graphs);
    assert_eq!(baseline.answers, thrashing.answers);
}
