//! Integration tests for the query-serving subsystem (`svqa serve`): real
//! TCP round trips against [`QueryServer`] — answers, cross-request cache
//! persistence, admission-control rejection, deadline enforcement, and
//! graceful drain.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread::JoinHandle;
use svqa::dataset::Mvqa;
use svqa::{QueryServer, ServeConfig, Svqa, SvqaConfig};

fn start_server(config: ServeConfig) -> (SocketAddr, JoinHandle<std::io::Result<()>>) {
    let mvqa = Mvqa::generate_small(60, 3);
    let system = Svqa::build(&mvqa.images, &mvqa.kg, SvqaConfig::default());
    let server = QueryServer::bind(system, "127.0.0.1:0", config).expect("bind");
    let addr = server.local_addr().expect("local addr");
    let handle = std::thread::spawn(move || server.serve());
    (addr, handle)
}

/// One HTTP/1.1 request; returns (status code, headers, body).
fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\n\
         Content-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response.split_once("\r\n\r\n").expect("header separator");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    (status, head.to_owned(), body.to_owned())
}

fn shutdown_and_join(addr: SocketAddr, handle: JoinHandle<std::io::Result<()>>) {
    let (status, _, _) = http(addr, "POST", "/shutdown", "");
    assert_eq!(status, 200);
    handle
        .join()
        .expect("serve thread panicked")
        .expect("serve returned an error");
}

#[test]
fn ask_twice_hits_the_persistent_cache_then_drains_cleanly() {
    let (addr, handle) = start_server(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    });

    let request = r#"{"question": "Does the dog appear in the car?"}"#;
    let (status, _, body) = http(addr, "POST", "/ask", request);
    assert_eq!(status, 200, "{body}");
    let first: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert!(first["answer_text"].as_str().is_some(), "{body}");
    assert_eq!(first["cache"]["path_hits"].as_u64(), Some(0), "{body}");

    // The same question again: the §V-B cache is shared across requests,
    // so the second run must be answered out of the path pool.
    let (status, _, body) = http(addr, "POST", "/ask", request);
    assert_eq!(status, 200, "{body}");
    let second: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert_eq!(second["answer_text"], first["answer_text"]);
    assert!(
        second["cache"]["path_hits"].as_u64().unwrap_or(0) >= 1,
        "second request saw no cache hits: {body}"
    );

    // Health stays inline (not queued) and reports shape.
    let (status, _, body) = http(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    let health: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert_eq!(health["status"].as_str(), Some("ok"));
    assert!(health["merged_vertices"].as_u64().unwrap() > 0);

    // Metrics routes are mounted on the same port.
    let (status, _, body) = http(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(body.contains("svqa_server_requests_total"), "{body}");

    shutdown_and_join(addr, handle);
}

#[test]
fn batch_answers_in_order_with_per_question_errors() {
    let (addr, handle) = start_server(ServeConfig::default());

    let request = r#"{"questions": ["Does the dog appear in the car?", "the red dog"]}"#;
    let (status, _, body) = http(addr, "POST", "/batch", request);
    assert_eq!(status, 200, "{body}");
    let parsed: serde_json::Value = serde_json::from_str(&body).unwrap();
    let answers = parsed["answers"].as_array().expect("answers array");
    assert_eq!(answers.len(), 2);
    assert!(answers[0]["answer_text"].as_str().is_some(), "{body}");
    // "the red dog" has no verb: a per-question parse error, not a batch
    // failure.
    assert!(answers[1]["error"].as_str().is_some(), "{body}");

    shutdown_and_join(addr, handle);
}

#[test]
fn full_admission_queue_rejects_with_429_and_retry_after() {
    let (addr, handle) = start_server(ServeConfig {
        queue_depth: 0, // deterministically full
        ..ServeConfig::default()
    });

    let (status, head, body) =
        http(addr, "POST", "/ask", r#"{"question": "Does the dog appear in the car?"}"#);
    assert_eq!(status, 429, "{body}");
    assert!(head.contains("Retry-After"), "{head}");

    // Health is answered inline, so the service stays green under
    // rejection pressure.
    let (status, _, _) = http(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);

    shutdown_and_join(addr, handle);
}

#[test]
fn exhausted_deadline_is_answered_with_504() {
    let (addr, handle) = start_server(ServeConfig::default());

    let request = r#"{"question": "Does the dog appear in the car?", "deadline_ms": 0}"#;
    let (status, head, body) = http(addr, "POST", "/ask", request);
    assert_eq!(status, 504, "{body}");
    assert!(body.contains("deadline"), "{body}");
    // Like 429 and 503, a timeout tells the client when to retry.
    assert!(head.contains("Retry-After"), "{head}");

    shutdown_and_join(addr, handle);
}

#[test]
fn malformed_requests_get_4xx_not_a_hung_connection() {
    let (addr, handle) = start_server(ServeConfig::default());

    let (status, _, body) = http(addr, "POST", "/ask", "this is not json");
    assert_eq!(status, 400);
    // Structured error body: a machine-readable code next to the message.
    let err: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert_eq!(err["code"].as_str(), Some("bad-json"), "{body}");
    let (status, _, body) = http(addr, "POST", "/ask", r#"{"no_question": 1}"#);
    assert_eq!(status, 400);
    let err: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert_eq!(err["code"].as_str(), Some("missing-field"), "{body}");
    let (status, _, _) = http(addr, "GET", "/nope", "");
    assert_eq!(status, 404);
    // Wrong method on a known route is 405, not 404.
    let (status, head, _) = http(addr, "GET", "/ask", "");
    assert_eq!(status, 405);
    assert!(head.contains("Allow"), "{head}");

    // Malformed traffic shows up in the metrics exposition.
    let (status, _, body) = http(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(body.contains("svqa_server_requests_bad_total"), "{body}");

    shutdown_and_join(addr, handle);
}

#[test]
fn lint_rejected_question_gets_400_with_diagnostics_and_server_stays_up() {
    let (addr, handle) = start_server(ServeConfig::default());

    // A typo'd predicate is refused at the door — no worker slot burnt —
    // with the full diagnostics in the body, suggestion included.
    let request = r#"{"question": "Is the dog weering the hat?"}"#;
    let (status, _, body) = http(addr, "POST", "/ask", request);
    assert_eq!(status, 400, "{body}");
    let rejected: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert_eq!(rejected["code"].as_str(), Some("lint-rejected"), "{body}");
    let diagnostics = rejected["diagnostics"].as_array().expect("diagnostics array");
    assert!(
        diagnostics
            .iter()
            .any(|d| d["code"].as_str() == Some("unknown-predicate")
                && d["suggestion"].as_str() == Some("wear")),
        "{body}"
    );

    // The service is healthy afterwards and still answers clean questions.
    let (status, _, _) = http(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    let (status, _, body) =
        http(addr, "POST", "/ask", r#"{"question": "Is the dog wearing the hat?"}"#);
    assert_eq!(status, 200, "{body}");
    let answered: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert!(answered["answer_text"].as_str().is_some(), "{body}");

    shutdown_and_join(addr, handle);
}
