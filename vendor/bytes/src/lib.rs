//! Offline stand-in for the `bytes` crate.
//!
//! Implements the little-endian cursor API that `svqa-graph::binio` uses:
//! [`Bytes`] (an owned immutable buffer with a read cursor), [`BytesMut`]
//! (a growable write buffer), and the [`Buf`]/[`BufMut`] traits. Unlike
//! the real crate there is no reference-counted zero-copy splitting —
//! the workspace only streams a snapshot through once, so a plain
//! `Vec<u8>` with an offset is sufficient and keeps this dependency
//! buildable without the registry.

/// Read-side cursor operations.
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;
    /// Borrow the unread bytes.
    fn chunk(&self) -> &[u8];
    /// Advance the read cursor by `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Read a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        self.copy_to_slice(&mut raw);
        u16::from_le_bytes(raw)
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        self.copy_to_slice(&mut raw);
        u32::from_le_bytes(raw)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        self.copy_to_slice(&mut raw);
        u64::from_le_bytes(raw)
    }

    /// Read a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        let mut raw = [0u8; 8];
        self.copy_to_slice(&mut raw);
        i64::from_le_bytes(raw)
    }

    /// Read a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }

    /// Copy `dst.len()` bytes into `dst`, advancing the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Copy the next `len` bytes out as an owned [`Bytes`].
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let mut out = vec![0u8; len];
        self.copy_to_slice(&mut out);
        Bytes::from(out)
    }
}

/// Write-side append operations.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

/// An owned immutable byte buffer with a read cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// An empty buffer.
    pub const fn new() -> Self {
        Bytes {
            data: Vec::new(),
            pos: 0,
        }
    }

    /// A buffer holding a static byte string (copied here; the real
    /// crate borrows it zero-copy).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            data: bytes.to_vec(),
            pos: 0,
        }
    }

    /// A new buffer over a sub-range of the unread portion.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        let unread = self.as_ref();
        let start = match range.start_bound() {
            std::ops::Bound::Included(&s) => s,
            std::ops::Bound::Excluded(&s) => s + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            std::ops::Bound::Included(&e) => e + 1,
            std::ops::Bound::Excluded(&e) => e,
            std::ops::Bound::Unbounded => unread.len(),
        };
        Bytes {
            data: unread[start..end].to_vec(),
            pos: 0,
        }
    }

    /// Total length of the unread portion.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether no unread bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.remaining(), "advance past end of buffer");
        self.pos += cnt;
    }
}

/// A growable write buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        let mut w = BytesMut::with_capacity(32);
        w.put_slice(b"HDR!");
        w.put_u8(7);
        w.put_u16_le(513);
        w.put_u32_le(70_000);
        w.put_i64_le(-9);
        w.put_f64_le(1.5);
        let mut r = w.freeze();
        let mut hdr = [0u8; 4];
        r.copy_to_slice(&mut hdr);
        assert_eq!(&hdr, b"HDR!");
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 513);
        assert_eq!(r.get_u32_le(), 70_000);
        assert_eq!(r.get_i64_le(), -9);
        assert_eq!(r.get_f64_le(), 1.5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn copy_to_bytes_advances() {
        let mut b = Bytes::from(vec![1, 2, 3, 4]);
        let head = b.copy_to_bytes(2);
        assert_eq!(head.as_ref(), &[1, 2]);
        assert_eq!(b.remaining(), 2);
    }
}
