//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the serde surface it uses. Instead of the real crate's
//! serializer/visitor architecture, this stand-in uses a concrete value
//! model: [`Serialize`] lowers a type into a [`Value`] tree and
//! [`Deserialize`] lifts it back. `serde_json` (also vendored) renders
//! that tree to JSON text and parses it back. The `#[derive(Serialize,
//! Deserialize)]` macros (from the vendored `serde_derive`) target these
//! traits and honor the `#[serde(skip)]`, `#[serde(default)]` and
//! `#[serde(transparent)]` attributes used in this workspace, with the
//! real crate's externally-tagged enum representation.

mod impls;
pub mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::{Map, Number, Value};

/// Serialization: lower `self` into the JSON-like [`Value`] model.
pub trait Serialize {
    /// Convert to a value tree.
    fn to_value(&self) -> Value;
}

/// Deserialization: lift a [`Value`] tree back into `Self`.
pub trait Deserialize: Sized {
    /// Convert from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Deserialization error: a human-readable description of the mismatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Build an error from a message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }

    /// The error message.
    pub fn message(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Mirror of `serde::de` for code that imports from there.
pub mod de {
    pub use crate::{Deserialize, Error};

    /// In the real crate this distinguishes borrowed from owned
    /// deserialization; the stand-in's [`Deserialize`] is always owned.
    pub trait DeserializeOwned: Deserialize {}
    impl<T: Deserialize> DeserializeOwned for T {}
}

/// Mirror of `serde::ser` for code that imports from there.
pub mod ser {
    pub use crate::{Error, Serialize};
}
