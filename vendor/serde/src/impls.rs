//! [`Serialize`]/[`Deserialize`] implementations for std types.

use crate::value::{Map, Number, Value};
use crate::{Deserialize, Error, Serialize};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::hash::Hash;
use std::sync::Arc;
use std::time::Duration;

fn type_err(expected: &str, got: &Value) -> Error {
    Error::custom(format!("expected {expected}, found {}", got.kind()))
}

// ---------------- scalars ----------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| type_err("bool", v))
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let u = v.as_u64().ok_or_else(|| type_err("unsigned integer", v))?;
                <$t>::try_from(u).map_err(|_| Error::custom(format!(
                    "integer {u} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 {
                    Value::Number(Number::PosInt(i as u64))
                } else {
                    Value::Number(Number::NegInt(i))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let i = v.as_i64().ok_or_else(|| type_err("integer", v))?;
                <$t>::try_from(i).map_err(|_| Error::custom(format!(
                    "integer {i} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| type_err("number", v))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(f64::from(*self)))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().map(|f| f as f32).ok_or_else(|| type_err("number", v))
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| type_err("single-char string", v))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom(format!("expected single-char string, found {s:?}"))),
        }
    }
}

// ---------------- strings ----------------

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str().map(str::to_owned).ok_or_else(|| type_err("string", v))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for std::path::PathBuf {
    fn to_value(&self) -> Value {
        Value::String(self.display().to_string())
    }
}

impl Deserialize for std::path::PathBuf {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(std::path::PathBuf::from(String::from_value(v)?))
    }
}

// ---------------- reference-ish wrappers ----------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Arc::new)
    }
}

// ---------------- Option ----------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

// ---------------- sequences ----------------

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| type_err("array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + Eq + Hash> Serialize for HashSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| type_err("array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let arr = v.as_array().ok_or_else(|| type_err("tuple array", v))?;
                let expected = [$( stringify!($n), )+].len();
                if arr.len() != expected {
                    return Err(Error::custom(format!(
                        "expected array of {expected}, found {}", arr.len())));
                }
                Ok(($($t::from_value(&arr[$n])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

// ---------------- maps ----------------
//
// Maps with string-like keys become JSON objects. Other key types (the
// workspace has tuple-keyed maps) become arrays of `[key, value]` pairs —
// the real serde_json would refuse them at runtime; self-consistent
// round-tripping matters more here than wire compatibility.

fn map_to_value<'a, K: Serialize + 'a, V: Serialize + 'a>(
    entries: impl Iterator<Item = (&'a K, &'a V)> + Clone,
) -> Value {
    let all_string_keys = entries
        .clone()
        .all(|(k, _)| matches!(k.to_value(), Value::String(_)));
    if all_string_keys {
        Value::Object(
            entries
                .map(|(k, v)| {
                    let Value::String(key) = k.to_value() else {
                        unreachable!("checked above")
                    };
                    (key, v.to_value())
                })
                .collect(),
        )
    } else {
        Value::Array(
            entries
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

fn map_from_value<K: Deserialize, V: Deserialize>(
    v: &Value,
) -> Result<Vec<(K, V)>, Error> {
    match v {
        Value::Object(m) => m
            .iter()
            .map(|(k, val)| {
                Ok((K::from_value(&Value::String(k.clone()))?, V::from_value(val)?))
            })
            .collect(),
        Value::Array(pairs) => pairs
            .iter()
            .map(|pair| {
                let arr = pair.as_array().ok_or_else(|| type_err("[key, value] pair", pair))?;
                if arr.len() != 2 {
                    return Err(Error::custom("expected [key, value] pair"));
                }
                Ok((K::from_value(&arr[0])?, V::from_value(&arr[1])?))
            })
            .collect(),
        other => Err(type_err("map", other)),
    }
}

impl<K: Serialize + Eq + Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(map_from_value::<K, V>(v)?.into_iter().collect())
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(map_from_value::<K, V>(v)?.into_iter().collect())
    }
}

// ---------------- misc std ----------------

impl Serialize for Duration {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        m.insert("secs".to_owned(), self.as_secs().to_value());
        m.insert("nanos".to_owned(), self.subsec_nanos().to_value());
        Value::Object(m)
    }
}

impl Deserialize for Duration {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let secs = u64::from_value(&v["secs"])?;
        let nanos = u32::from_value(&v["nanos"])?;
        Ok(Duration::new(secs, nanos))
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, Error> {
        if v.is_null() {
            Ok(())
        } else {
            Err(type_err("null", v))
        }
    }
}

// ---------------- Value itself ----------------

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
