//! The JSON-like value model shared by the vendored `serde` and
//! `serde_json` crates.

use std::fmt;

/// An arbitrary JSON-shaped value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// JSON `null`.
    #[default]
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number (integer or float).
    Number(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object. Insertion order is preserved.
    Object(Map),
}

impl Value {
    /// Member lookup on objects; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// Element lookup on arrays.
    pub fn get_index(&self, idx: usize) -> Option<&Value> {
        match self {
            Value::Array(a) => a.get(idx),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload as `u64`, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The numeric payload as `i64`, if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The numeric payload as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The object payload, if this is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Whether this value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Short kind name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        self.get_index(idx).unwrap_or(&NULL)
    }
}

/// A JSON number: unsigned, signed, or floating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    PosInt(u64),
    /// Negative integer.
    NegInt(i64),
    /// Floating point.
    Float(f64),
}

impl Number {
    /// As `u64` if non-negative integral.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(u) => Some(u),
            Number::NegInt(_) => None,
            Number::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                Some(f as u64)
            }
            Number::Float(_) => None,
        }
    }

    /// As `i64` if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(u) => i64::try_from(u).ok(),
            Number::NegInt(i) => Some(i),
            Number::Float(f)
                if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 =>
            {
                Some(f as i64)
            }
            Number::Float(_) => None,
        }
    }

    /// As `f64` (always possible, possibly lossy for huge integers).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(u) => u as f64,
            Number::NegInt(i) => i as f64,
            Number::Float(f) => f,
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::PosInt(u) => write!(f, "{u}"),
            Number::NegInt(i) => write!(f, "{i}"),
            Number::Float(x) => {
                if x.is_finite() {
                    // Keep floats re-parseable as floats.
                    if x.fract() == 0.0 && x.abs() < 1e15 {
                        write!(f, "{x:.1}")
                    } else {
                        write!(f, "{x}")
                    }
                } else {
                    // JSON has no Inf/NaN; degrade to null like serde_json's
                    // lossy modes.
                    write!(f, "null")
                }
            }
        }
    }
}

/// An insertion-ordered string-keyed map.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// An empty map.
    pub fn new() -> Self {
        Map::default()
    }

    /// Insert or replace a key.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            return Some(std::mem::replace(&mut slot.1, value));
        }
        self.entries.push((key, value));
        None
    }

    /// Lookup by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Whether a key is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Object keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }

    /// Object values in insertion order.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.entries.iter().map(|(_, v)| v)
    }

    /// The first entry, if any (used for externally-tagged enums).
    pub fn first(&self) -> Option<(&String, &Value)> {
        self.entries.first().map(|(k, v)| (k, v))
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut m = Map::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}
