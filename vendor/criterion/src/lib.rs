//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace's benches use —
//! [`Criterion::bench_function`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`black_box`], and the `criterion_group!` /
//! `criterion_main!` macros — with a deliberately simple measurement
//! model: each benchmark runs a warm-up batch, then `sample_size` timed
//! batches, and prints mean/min/max per iteration. There is no
//! statistical analysis, HTML report, or saved baseline.

use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a value or the work producing it.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost. The stand-in times each
/// routine invocation individually, so the variants only influence batch
/// counts in the real crate and are accepted here for compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// Input too large to batch at all.
    PerIteration,
    /// Explicit number of iterations per batch.
    NumBatches(u64),
    /// Explicit number of batches.
    NumIterations(u64),
}

/// The benchmark driver handed to each `criterion_group!` target.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark (builder style, matching the
    /// real crate's `Criterion::default().sample_size(n)`).
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Run one benchmark, timing `routine`'s `Bencher::iter*` loop.
    pub fn bench_function<F>(&mut self, id: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        routine(&mut b);
        b.report(id);
        self
    }

    /// Compatibility hook called by `criterion_main!`; the stand-in has
    /// no end-of-run summary.
    pub fn final_summary(&self) {}
}

/// Times the measured routine.
pub struct Bencher {
    /// Per-iteration durations, one per sample.
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine`, called repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: find an iteration count that gives a
        // measurable (~5ms) batch, capped to keep total time bounded.
        let mut iters_per_sample = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(5) || iters_per_sample >= 1 << 20 {
                break;
            }
            iters_per_sample *= 2;
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters_per_sample as u32);
        }
    }

    /// Time `routine` on fresh input from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // One warm-up invocation.
        black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<40} (no samples)");
            return;
        }
        let min = self.samples.iter().min().unwrap();
        let max = self.samples.iter().max().unwrap();
        let mean = self.samples.iter().sum::<Duration>() / self.samples.len() as u32;
        println!(
            "{id:<40} time: [{} {} {}]",
            fmt_duration(*min),
            fmt_duration(mean),
            fmt_duration(*max)
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Define a benchmark group: either `criterion_group!(name, target, ...)`
/// or the braced form with a `config = ...` expression.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define `main()` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
    }
}
