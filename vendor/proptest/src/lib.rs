//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace's property tests use: the
//! [`Strategy`](strategy::Strategy) trait with `prop_map` /
//! `prop_flat_map` / `boxed`, integer and float range strategies, tuple
//! strategies, a character-class regex subset for `&str` strategies,
//! `collection::vec`, `sample::select`, `prop_oneof!`, and the
//! `proptest!` test harness macro.
//!
//! Differences from the real crate, chosen for zero dependencies:
//!
//! * **No shrinking.** A failing case reports the sampled inputs via the
//!   panic message (`prop_assert!` forwards to `assert!`), but is not
//!   minimized.
//! * **Deterministic seeding.** Each test derives its RNG seed from its
//!   module path and function name, so runs are reproducible without
//!   `proptest-regressions` persistence (existing regression files are
//!   ignored).

pub mod collection;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// The glob import used by every property test in this workspace.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assert a property holds; failure panics with the formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Assert two expressions are not equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniform choice between several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($arm) ),+
        ])
    };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that samples its strategies `config.cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $(
        $(#[$meta:meta])+
        fn $name:ident ( $( $pat:pat in $strat:expr ),+ $(,)? ) $body:block
    )* ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..__config.cases {
                    let _ = __case;
                    let ( $($pat,)+ ) = (
                        $( $crate::strategy::Strategy::sample(&$strat, &mut __rng), )+
                    );
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::deterministic("ranges_respect_bounds");
        for _ in 0..200 {
            let v = Strategy::sample(&(3u8..9), &mut rng);
            assert!((3..9).contains(&v));
            let f = Strategy::sample(&(0.25f64..0.5), &mut rng);
            assert!((0.25..0.5).contains(&f));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = TestRng::deterministic("map_and_flat_map_compose");
        let strat = (1usize..5).prop_flat_map(|n| {
            crate::collection::vec(0u8..10, n).prop_map(move |v| (n, v))
        });
        for _ in 0..50 {
            let (n, v) = Strategy::sample(&strat, &mut rng);
            assert_eq!(v.len(), n);
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn string_strategy_matches_class_and_counts() {
        let mut rng = TestRng::deterministic("string_strategy");
        for _ in 0..100 {
            let s = Strategy::sample(&"[a-z]{1,8}", &mut rng);
            assert!((1..=8).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let t = Strategy::sample(&"[A-Za-z',?. ]{0,20}", &mut rng);
            assert!(t.len() <= 20);
            assert!(t
                .chars()
                .all(|c| c.is_ascii_alphabetic() || "',?. ".contains(c)));
        }
    }

    #[test]
    fn select_and_oneof_cover_all_arms() {
        const ITEMS: [&str; 3] = ["a", "b", "c"];
        let mut rng = TestRng::deterministic("select_and_oneof");
        let sel = crate::sample::select(&ITEMS[..]);
        let union = prop_oneof![Just(0u8), Just(1u8), Just(2u8)];
        let mut seen_sel = std::collections::HashSet::new();
        let mut seen_union = std::collections::HashSet::new();
        for _ in 0..200 {
            seen_sel.insert(Strategy::sample(&sel, &mut rng));
            seen_union.insert(Strategy::sample(&union, &mut rng));
        }
        assert_eq!(seen_sel.len(), 3);
        assert_eq!(seen_union.len(), 3);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn harness_macro_binds_patterns(
            (a, b) in (0u32..10, 0u32..10),
            s in "[a-z]{2,4}",
        ) {
            prop_assert!(a < 10 && b < 10);
            prop_assert!((2..=4).contains(&s.len()));
        }
    }

    proptest! {
        #[test]
        fn harness_macro_default_config(x in 0i32..100) {
            prop_assert_ne!(x, 100);
            prop_assert_eq!(x, x);
        }
    }
}
