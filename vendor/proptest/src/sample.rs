//! Sampling from explicit value lists.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Uniform choice from a slice or vector of values.
pub fn select<T: Clone, I: Into<Vec<T>>>(items: I) -> Select<T> {
    let items = items.into();
    assert!(!items.is_empty(), "select() needs at least one item");
    Select { items }
}

/// See [`select`].
#[derive(Debug, Clone)]
pub struct Select<T> {
    items: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.0.gen_range(0..self.items.len());
        self.items[idx].clone()
    }
}
