//! Test-run configuration and the deterministic RNG behind sampling.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// How many cases each property test runs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; 64 keeps the offline suite fast
        // while still exercising each property broadly.
        ProptestConfig { cases: 64 }
    }
}

/// The RNG handed to [`Strategy::sample`](crate::strategy::Strategy::sample).
pub struct TestRng(pub(crate) StdRng);

impl TestRng {
    /// Deterministic RNG keyed by a test identifier (FNV-1a of the name),
    /// so each test gets a stable but distinct stream.
    pub fn deterministic(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(hash))
    }
}
