//! The [`Strategy`] trait and core combinators.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating random values of one type.
///
/// Unlike the real proptest, a strategy here is just a sampler — there is
/// no value tree and no shrinking.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then build a dependent strategy from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erase this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from a non-empty arm list.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.0.gen_range(0..self.arms.len());
        self.arms[idx].sample(rng)
    }
}

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draw from the type's whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.0.gen_bool(0.5)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.0.gen::<u64>() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.0.gen::<f64>()
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        rng.0.gen::<f32>()
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy covering a type's whole domain, like `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($( self.$n.sample(rng), )+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}
