//! `&str` regex-subset strategies.
//!
//! The workspace's tests use patterns of the shape
//! `[class]{n,m}` — optionally several atoms in sequence, where an atom
//! is a character class or a literal character, and quantifiers are
//! `{n}`, `{n,m}`, or absent (meaning exactly one). Character classes
//! support literal characters and `a-z` ranges; every non-`]` character
//! inside a class is literal (including `.`, `?`, `,`, `'`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

struct Atom {
    choices: Vec<char>,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let choices = if chars[i] == '[' {
            let mut set = Vec::new();
            i += 1;
            while i < chars.len() && chars[i] != ']' {
                // `a-z` range (a `-` at the end of the class is literal).
                if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                    let (lo, hi) = (chars[i], chars[i + 2]);
                    assert!(lo <= hi, "bad range {lo}-{hi} in pattern {pattern:?}");
                    set.extend((lo..=hi).filter(char::is_ascii));
                    i += 3;
                } else {
                    set.push(chars[i]);
                    i += 1;
                }
            }
            assert!(i < chars.len(), "unterminated class in pattern {pattern:?}");
            i += 1; // ']'
            set
        } else {
            let c = chars[i];
            assert!(
                !"(){}|*+?.^$".contains(c) || c == '.',
                "unsupported regex construct {c:?} in pattern {pattern:?}"
            );
            i += 1;
            vec![c]
        };

        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .expect("unterminated quantifier")
                + i;
        let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("quantifier min"),
                    hi.trim().parse().expect("quantifier max"),
                ),
                None => {
                    let n = body.trim().parse().expect("quantifier count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(!choices.is_empty(), "empty class in pattern {pattern:?}");
        atoms.push(Atom { choices, min, max });
    }
    atoms
}

impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in parse_pattern(self) {
            let count = rng.0.gen_range(atom.min..=atom.max);
            for _ in 0..count {
                let idx = rng.0.gen_range(0..atom.choices.len());
                out.push(atom.choices[idx]);
            }
        }
        out
    }
}
