//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against
//! the vendored value-model `serde` crate, parsing the derive input with
//! the bare `proc_macro` API (no `syn`/`quote` available offline). The
//! supported input language is exactly what this workspace uses:
//!
//! * non-generic structs — named, tuple/newtype, unit;
//! * non-generic enums — unit, newtype, tuple, and struct variants,
//!   encoded externally tagged like the real serde;
//! * container attribute `#[serde(transparent)]`;
//! * field attributes `#[serde(skip)]` and `#[serde(default)]`.
//!
//! Unknown shapes (generics, lifetimes, unions) produce a compile error
//! naming this file, so failures are loud rather than silently wrong.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------------
// Input model
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct Field {
    name: String,
    skip: bool,
    default: bool,
}

#[derive(Debug)]
enum Shape {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: Shape,
}

#[derive(Debug)]
enum Kind {
    Struct(Shape),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Input {
    name: String,
    transparent: bool,
    kind: Kind,
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    /// Consume leading `#[...]` attributes; return the idents found inside
    /// any `#[serde(...)]` among them.
    fn take_attrs(&mut self) -> Vec<String> {
        let mut flags = Vec::new();
        loop {
            let is_hash = matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#');
            if !is_hash {
                return flags;
            }
            self.next(); // '#'
            let Some(TokenTree::Group(g)) = self.next() else {
                return flags;
            };
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            let is_serde =
                matches!(inner.first(), Some(TokenTree::Ident(i)) if i.to_string() == "serde");
            if !is_serde {
                continue;
            }
            if let Some(TokenTree::Group(args)) = inner.get(1) {
                // Collect bare idents: `skip`, `default`, `transparent`.
                // `name = "..."` forms contribute their leading ident too,
                // which is fine — unsupported ones are rejected below.
                for t in args.stream() {
                    if let TokenTree::Ident(i) = t {
                        flags.push(i.to_string());
                    }
                }
            }
        }
    }

    /// Consume an optional `pub` / `pub(...)` visibility.
    fn skip_visibility(&mut self) {
        if matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
            self.next();
            if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                self.next();
            }
        }
    }

    /// Consume tokens of one type expression, stopping at a `,` that sits
    /// outside every `<...>` pair (delimiter groups are single tokens, so
    /// only angle brackets need counting).
    fn skip_type(&mut self) {
        let mut angle_depth = 0i32;
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => return,
                _ => {}
            }
            self.next();
        }
    }
}

fn unsupported(msg: &str) -> TokenStream {
    format!("compile_error!(\"vendored serde_derive: unsupported input: {msg}\");")
        .parse()
        .expect("literal compile_error")
}

fn parse_named_fields(group_stream: TokenStream) -> Result<Vec<Field>, String> {
    let mut c = Cursor::new(group_stream);
    let mut fields = Vec::new();
    while !c.at_end() {
        let attrs = c.take_attrs();
        if c.at_end() {
            break; // trailing attrs would be malformed; let rustc complain
        }
        c.skip_visibility();
        let Some(TokenTree::Ident(name)) = c.next() else {
            return Err("expected field name".to_owned());
        };
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => return Err(format!("expected ':' after field `{name}`")),
        }
        c.skip_type();
        c.next(); // consume ',' if present
        fields.push(Field {
            name: name.to_string(),
            skip: attrs.iter().any(|a| a == "skip"),
            default: attrs.iter().any(|a| a == "default"),
        });
    }
    Ok(fields)
}

fn count_tuple_fields(group_stream: TokenStream) -> usize {
    let mut c = Cursor::new(group_stream);
    if c.at_end() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    let mut saw_trailing_comma = false;
    while let Some(t) = c.next() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                count += 1;
                saw_trailing_comma = c.at_end();
            }
            _ => {}
        }
    }
    if saw_trailing_comma {
        count -= 1;
    }
    count
}

fn parse_input(stream: TokenStream) -> Result<Input, String> {
    let mut c = Cursor::new(stream);
    let attrs = c.take_attrs();
    let transparent = attrs.iter().any(|a| a == "transparent");
    c.skip_visibility();
    let keyword = match c.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected struct/enum, found {other:?}")),
    };
    let Some(TokenTree::Ident(name)) = c.next() else {
        return Err("expected type name".to_owned());
    };
    if matches!(c.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("generic type `{name}` (generics are not supported)"));
    }
    let name = name.to_string();

    match keyword.as_str() {
        "struct" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Input {
                name,
                transparent,
                kind: Kind::Struct(Shape::Named(parse_named_fields(g.stream())?)),
            }),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Ok(Input {
                name,
                transparent,
                kind: Kind::Struct(Shape::Tuple(count_tuple_fields(g.stream()))),
            }),
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Input {
                name,
                transparent,
                kind: Kind::Struct(Shape::Unit),
            }),
            other => Err(format!("unexpected struct body {other:?}")),
        },
        "enum" => {
            let Some(TokenTree::Group(body)) = c.next() else {
                return Err("expected enum body".to_owned());
            };
            let mut vc = Cursor::new(body.stream());
            let mut variants = Vec::new();
            while !vc.at_end() {
                vc.take_attrs();
                if vc.at_end() {
                    break;
                }
                let Some(TokenTree::Ident(vname)) = vc.next() else {
                    return Err("expected variant name".to_owned());
                };
                let shape = match vc.peek() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let n = count_tuple_fields(g.stream());
                        vc.next();
                        Shape::Tuple(n)
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let fields = parse_named_fields(g.stream())?;
                        vc.next();
                        Shape::Named(fields)
                    }
                    _ => Shape::Unit,
                };
                // Skip an optional discriminant, then the separating comma.
                while let Some(t) = vc.peek() {
                    if matches!(t, TokenTree::Punct(p) if p.as_char() == ',') {
                        vc.next();
                        break;
                    }
                    vc.next();
                }
                variants.push(Variant {
                    name: vname.to_string(),
                    shape,
                });
            }
            Ok(Input {
                name,
                transparent,
                kind: Kind::Enum(variants),
            })
        }
        other => Err(format!("unsupported item kind `{other}`")),
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::Struct(Shape::Named(fields)) => {
            let active: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
            if input.transparent {
                let f = active
                    .first()
                    .expect("transparent struct needs one unskipped field");
                format!("::serde::Serialize::to_value(&self.{})", f.name)
            } else {
                let mut s = String::from("let mut __m = ::serde::Map::new();\n");
                for f in &active {
                    s.push_str(&format!(
                        "__m.insert(\"{0}\".to_string(), ::serde::Serialize::to_value(&self.{0}));\n",
                        f.name
                    ));
                }
                s.push_str("::serde::Value::Object(__m)");
                s
            }
        }
        Kind::Struct(Shape::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_owned(),
        Kind::Struct(Shape::Tuple(n)) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", elems.join(", "))
        }
        Kind::Struct(Shape::Unit) => "::serde::Value::Null".to_owned(),
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.shape {
                    Shape::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Value::String(\"{vname}\".to_string()),\n"
                    )),
                    Shape::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vname}(__f0) => {{\n\
                         let mut __m = ::serde::Map::new();\n\
                         __m.insert(\"{vname}\".to_string(), ::serde::Serialize::to_value(__f0));\n\
                         ::serde::Value::Object(__m)\n}}\n"
                    )),
                    Shape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let elems: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => {{\n\
                             let mut __m = ::serde::Map::new();\n\
                             __m.insert(\"{vname}\".to_string(), ::serde::Value::Array(vec![{}]));\n\
                             ::serde::Value::Object(__m)\n}}\n",
                            binds.join(", "),
                            elems.join(", ")
                        ));
                    }
                    Shape::Named(fields) => {
                        let active: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
                        let binds: Vec<String> =
                            fields.iter().map(|f| f.name.clone()).collect();
                        let mut inner = String::from("let mut __inner = ::serde::Map::new();\n");
                        for f in &active {
                            inner.push_str(&format!(
                                "__inner.insert(\"{0}\".to_string(), ::serde::Serialize::to_value({0}));\n",
                                f.name
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {} }} => {{\n{inner}\
                             let mut __m = ::serde::Map::new();\n\
                             __m.insert(\"{vname}\".to_string(), ::serde::Value::Object(__inner));\n\
                             ::serde::Value::Object(__m)\n}}\n",
                            binds.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}\n}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

/// Expression deserializing named `fields` out of object expr `{obj}` into
/// a `{path} {{ ... }}` constructor.
fn named_fields_ctor(path: &str, obj: &str, fields: &[Field]) -> String {
    let mut inits = String::new();
    for f in fields {
        let fname = &f.name;
        if f.skip {
            inits.push_str(&format!("{fname}: ::std::default::Default::default(),\n"));
        } else if f.default {
            inits.push_str(&format!(
                "{fname}: match {obj}.get(\"{fname}\") {{\n\
                 ::std::option::Option::Some(__x) => ::serde::Deserialize::from_value(__x)?,\n\
                 ::std::option::Option::None => ::std::default::Default::default(),\n}},\n"
            ));
        } else {
            // Missing fields deserialize from null: `Option` fields become
            // `None`, everything else reports the field by name.
            inits.push_str(&format!(
                "{fname}: ::serde::Deserialize::from_value(\
                 {obj}.get(\"{fname}\").unwrap_or(&::serde::Value::Null))\
                 .map_err(|__e| ::serde::Error::custom(\
                 format!(\"{path}.{fname}: {{}}\", __e)))?,\n"
            ));
        }
    }
    format!("{path} {{\n{inits}}}")
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::Struct(Shape::Named(fields)) => {
            let active: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
            if input.transparent {
                let f = active
                    .first()
                    .expect("transparent struct needs one unskipped field");
                let skipped: String = fields
                    .iter()
                    .filter(|f| f.skip)
                    .map(|f| format!("{}: ::std::default::Default::default(),\n", f.name))
                    .collect();
                format!(
                    "::std::result::Result::Ok({name} {{\n\
                     {}: ::serde::Deserialize::from_value(__v)?,\n{skipped}}})",
                    f.name
                )
            } else {
                format!(
                    "let __obj = __v.as_object().ok_or_else(|| \
                     ::serde::Error::custom(format!(\"{name}: expected object, found {{}}\", __v.kind())))?;\n\
                     ::std::result::Result::Ok({})",
                    named_fields_ctor(name, "__obj", fields)
                )
            }
        }
        Kind::Struct(Shape::Tuple(1)) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Kind::Struct(Shape::Tuple(n)) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__arr[{i}])?"))
                .collect();
            format!(
                "let __arr = __v.as_array().ok_or_else(|| \
                 ::serde::Error::custom(\"{name}: expected array\"))?;\n\
                 if __arr.len() != {n} {{\n\
                 return ::std::result::Result::Err(::serde::Error::custom(\
                 format!(\"{name}: expected {n} elements, found {{}}\", __arr.len())));\n}}\n\
                 ::std::result::Result::Ok({name}({}))",
                elems.join(", ")
            )
        }
        Kind::Struct(Shape::Unit) => format!("::std::result::Result::Ok({name})"),
        Kind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut keyed_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.shape {
                    Shape::Unit => unit_arms.push_str(&format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),\n"
                    )),
                    Shape::Tuple(1) => keyed_arms.push_str(&format!(
                        "\"{vname}\" => ::std::result::Result::Ok(\
                         {name}::{vname}(::serde::Deserialize::from_value(__inner)?)),\n"
                    )),
                    Shape::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__arr[{i}])?"))
                            .collect();
                        keyed_arms.push_str(&format!(
                            "\"{vname}\" => {{\n\
                             let __arr = __inner.as_array().ok_or_else(|| \
                             ::serde::Error::custom(\"{name}::{vname}: expected array\"))?;\n\
                             if __arr.len() != {n} {{\n\
                             return ::std::result::Result::Err(::serde::Error::custom(\
                             \"{name}::{vname}: wrong tuple arity\"));\n}}\n\
                             ::std::result::Result::Ok({name}::{vname}({}))\n}}\n",
                            elems.join(", ")
                        ));
                    }
                    Shape::Named(fields) => {
                        keyed_arms.push_str(&format!(
                            "\"{vname}\" => {{\n\
                             let __obj = __inner.as_object().ok_or_else(|| \
                             ::serde::Error::custom(\"{name}::{vname}: expected object\"))?;\n\
                             ::std::result::Result::Ok({})\n}}\n",
                            named_fields_ctor(&format!("{name}::{vname}"), "__obj", fields)
                        ));
                    }
                }
            }
            format!(
                "match __v {{\n\
                 ::serde::Value::String(__s) => match __s.as_str() {{\n{unit_arms}\
                 __other => ::std::result::Result::Err(::serde::Error::custom(\
                 format!(\"{name}: unknown unit variant {{:?}}\", __other))),\n}},\n\
                 ::serde::Value::Object(__m) if __m.len() == 1 => {{\n\
                 let (__k, __inner) = __m.first().expect(\"len checked\");\n\
                 match __k.as_str() {{\n{keyed_arms}\
                 __other => ::std::result::Result::Err(::serde::Error::custom(\
                 format!(\"{name}: unknown variant {{:?}}\", __other))),\n}}\n}}\n\
                 __other => ::std::result::Result::Err(::serde::Error::custom(\
                 format!(\"{name}: expected variant string or single-key object, found {{}}\", \
                 __other.kind()))),\n}}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         {body}\n}}\n}}\n"
    )
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// Derive the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_input(input) {
        Ok(parsed) => gen_serialize(&parsed)
            .parse()
            .unwrap_or_else(|e| unsupported(&format!("generated code did not parse: {e}"))),
        Err(e) => unsupported(&e.replace('"', "'")),
    }
}

/// Derive the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_input(input) {
        Ok(parsed) => gen_deserialize(&parsed)
            .parse()
            .unwrap_or_else(|e| unsupported(&format!("generated code did not parse: {e}"))),
        Err(e) => unsupported(&e.replace('"', "'")),
    }
}
