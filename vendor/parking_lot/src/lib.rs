//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the handful of external APIs it actually uses. This crate
//! mirrors the `parking_lot` surface the workspace relies on — `Mutex`
//! and `RwLock` with non-poisoning guards — on top of `std::sync`
//! primitives. A poisoned std lock (a panic while holding the guard)
//! is recovered transparently, matching parking_lot's semantics of not
//! having poisoning at all.

use std::sync::{self, PoisonError};

/// A mutual-exclusion lock whose guard access never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempt to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Get a mutable reference to the underlying data (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose guard access never returns a poison error.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// RAII read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Get a mutable reference to the underlying data (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
