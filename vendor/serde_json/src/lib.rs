//! Offline stand-in for `serde_json`.
//!
//! Renders the vendored `serde` crate's [`Value`] model to JSON text and
//! parses JSON text back. The subset implemented is full JSON (RFC 8259)
//! minus streaming: documents are materialized as [`Value`] trees.

mod parse;
mod write;

pub use serde::value::{Map, Number, Value};

/// Error from JSON serialization or deserialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Build an error from a message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.message().to_owned())
    }
}

/// Alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Lower any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Lift a [`Value`] tree into a concrete type.
pub fn from_value<T: serde::Deserialize>(value: &Value) -> Result<T> {
    T::from_value(value).map_err(Error::from)
}

/// Serialize to compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write::compact(&value.to_value(), &mut out);
    Ok(out)
}

/// Serialize to human-readable JSON text (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write::pretty(&value.to_value(), 0, &mut out);
    Ok(out)
}

/// Serialize to compact JSON bytes.
pub fn to_vec<T: serde::Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Deserialize a type from JSON text.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let value = parse::parse(s)?;
    T::from_value(&value).map_err(Error::from)
}

/// Deserialize a type from JSON bytes.
pub fn from_slice<T: serde::Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::custom(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

/// Build a [`Value`] inline.
///
/// Supports `null`, arrays of `json!`-able elements, and objects with
/// string-literal keys whose values are arbitrary serializable
/// expressions. Nest objects by calling `json!` explicitly in value
/// position.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:tt),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($elem) ),* ])
    };
    ({ $($key:tt : $val:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut __m = $crate::Map::new();
        $( __m.insert($key.to_string(), $crate::to_value(&$val)); )*
        $crate::Value::Object(__m)
    }};
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        for text in ["null", "true", "false", "0", "-17", "3.5", "\"hi\""] {
            let v: Value = from_str(text).unwrap();
            assert_eq!(to_string(&v).unwrap(), text);
        }
    }

    #[test]
    fn round_trip_nested() {
        let text = r#"{"a":[1,2,{"b":null}],"c":"x\"y"}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(to_string(&v).unwrap(), text);
    }

    #[test]
    fn pretty_parses_back() {
        let v = json!({ "k": [1, 2], "s": "v" });
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"k\""));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn floats_stay_floats() {
        let v = to_value(&2.0f64);
        let text = to_string(&v).unwrap();
        assert_eq!(text, "2.0");
        let back: f64 = from_str(&text).unwrap();
        assert_eq!(back, 2.0);
    }

    #[test]
    fn string_escapes() {
        let v = Value::String("line\nquote\"tab\tback\\u{1}".replace("u{1}", "\u{1}"));
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn unicode_escape_parsing() {
        let v: Value = from_str(r#""Aé😀""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé😀"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("nul").is_err());
    }

    #[test]
    fn json_macro_shapes() {
        assert_eq!(json!(null), Value::Null);
        assert_eq!(to_string(&json!([1, 2])).unwrap(), "[1,2]");
        let obj = json!({ "n": 1u32 });
        assert_eq!(obj["n"].as_u64(), Some(1));
    }
}
