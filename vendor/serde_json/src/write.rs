//! JSON text rendering.

use serde::value::Value;

pub fn compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => write_escaped(s, out),
        Value::Array(a) => {
            out.push('[');
            for (i, elem) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                compact(elem, out);
            }
            out.push(']');
        }
        Value::Object(m) => {
            out.push('{');
            for (i, (k, val)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                compact(val, out);
            }
            out.push('}');
        }
    }
}

pub fn pretty(v: &Value, indent: usize, out: &mut String) {
    match v {
        Value::Array(a) if !a.is_empty() => {
            out.push('[');
            for (i, elem) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                push_indent(indent + 1, out);
                pretty(elem, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push(']');
        }
        Value::Object(m) if !m.is_empty() => {
            out.push('{');
            for (i, (k, val)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                push_indent(indent + 1, out);
                write_escaped(k, out);
                out.push_str(": ");
                pretty(val, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push('}');
        }
        other => compact(other, out),
    }
}

fn push_indent(level: usize, out: &mut String) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
