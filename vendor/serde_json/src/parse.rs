//! Recursive-descent JSON parser producing [`Value`] trees.

use crate::Error;
use serde::value::{Map, Number, Value};

pub fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::custom(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut elems = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(elems));
        }
        loop {
            self.skip_ws();
            elems.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(elems));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Combine UTF-16 surrogate pairs.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + (low.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                            // hex4 advanced past the digits; skip the
                            // shared `pos += 1` below.
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a valid &str,
                    // so byte-level continuation handling is safe).
                    let start = self.pos;
                    self.pos += 1;
                    while self
                        .peek()
                        .is_some_and(|b| (b & 0xC0) == 0x80)
                    {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut cp = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => (c - b'0') as u32,
                Some(c @ b'a'..=b'f') => (c - b'a' + 10) as u32,
                Some(c @ b'A'..=b'F') => (c - b'A' + 10) as u32,
                _ => return Err(self.err("expected 4 hex digits")),
            };
            cp = cp * 16 + d;
            self.pos += 1;
        }
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::NegInt(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::Float(f)))
            .map_err(|_| Error::custom(format!("invalid number {text:?} at byte {start}")))
    }
}
