//! Offline stand-in for the `rand` crate.
//!
//! Provides the deterministic-RNG surface the workspace uses:
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], the [`Rng`] extension
//! trait (`gen`, `gen_range`, `gen_bool`) and [`seq::SliceRandom`]
//! (`shuffle`, `choose`). The generator is xoshiro256++ seeded through
//! splitmix64 — high-quality, fast, and fully reproducible from a `u64`
//! seed, which is all the synthetic datasets need. Stream values differ
//! from the real `rand` crate; everything in the workspace derives its
//! fixtures from seeds at runtime, so only determinism matters, not the
//! exact stream.

/// Low-level uniform bit generation.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that `Rng::gen` can produce.
pub trait Standard: Sized {
    /// Draw a uniformly distributed value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Element types `Rng::gen_range` can draw uniformly.
///
/// Mirrors the real crate's structure: per-type uniform sampling plus a
/// single blanket [`SampleRange`] impl per range shape, so type inference
/// unifies the range's element type with `gen_range`'s return type (this
/// is what lets `gen_range(0.0..x)` infer `f64` from context).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_exclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "gen_range: empty range");
                let unit = <$t as Standard>::draw(rng);
                lo + unit * (hi - lo)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "gen_range: empty range");
                let unit = <$t as Standard>::draw(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// Ranges usable with `Rng::gen_range`.
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_exclusive(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draw uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0,1]");
        <f64 as Standard>::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The standard deterministic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; splitmix64 of any seed
            // cannot produce four zeros, but guard anyway.
            if s == [0; 4] {
                s[0] = 1;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffle the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(-2i64..=2);
            assert!((-2..=2).contains(&w));
            let f = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes_and_choose_selects() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
