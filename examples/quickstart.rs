//! Quickstart: build a small MVQA world and answer the paper's running
//! example end-to-end (Example 1 / Figures 4–5).
//!
//! ```text
//! cargo run -p svqa --example quickstart --release
//! ```

use svqa::{Svqa, SvqaConfig};
use svqa_dataset::Mvqa;

fn main() {
    // 1. A synthetic MVQA-style world: images + knowledge graph.
    println!("generating a 1,000-image MVQA world...");
    let mvqa = Mvqa::generate_small(1000, 7);

    // 2. Offline phase: scene graphs → merged graph (Fig. 2 left side).
    println!("building the merged graph (scene-graph generation + Algorithm 1)...");
    let system = Svqa::build(&mvqa.images, &mvqa.kg, SvqaConfig::default());
    let stats = system.build_stats();
    println!(
        "merged graph: {} vertices, {} edges ({} scene graphs; {} cached subgraphs, {:.0}% of labels cached, {:.0}% of vertices covered)",
        stats.merged_vertices,
        stats.merged_edges,
        stats.scene_graphs,
        stats.merge.cached_subgraphs,
        stats.merge.fraction_labels_cached * 100.0,
        stats.merge.fraction_vertices_covered * 100.0,
    );

    // 3. The paper's Example 1 question, end-to-end.
    let question = "What kind of clothes are worn by the wizard who is most \
                    frequently hanging out with Harry Potter's girlfriend?";
    println!("\nQ: {question}");

    // Show the query graph (Algorithm 2's output, Fig. 4).
    let gq = system.parse(question).expect("question parses");
    println!("query graph ({:?}):", gq.question_type);
    for (i, v) in gq.vertices.iter().enumerate() {
        println!("  v{i}: {}", v.display());
    }
    for e in &gq.edges {
        println!(
            "  v{} --{}--> v{}",
            e.provider,
            e.dependency.as_str(),
            e.consumer
        );
    }

    // Execute it (Algorithm 3, Fig. 5).
    let answer = system.answer(question).expect("question executes");
    println!("A: {answer}");

    // 4. A few more question types.
    for q in [
        "Does the dog appear in the car?",
        "How many dogs are sitting on the grass?",
        "What kind of animals is carried by the pets that were situated in the car?",
    ] {
        match system.answer(q) {
            Ok(a) => println!("\nQ: {q}\nA: {a}"),
            Err(e) => println!("\nQ: {q}\nA: <error: {e}>"),
        }
    }
}
