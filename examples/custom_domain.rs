//! Applying SVQA to a custom domain — the paper's §I motivation ("an
//! online analytics service provider that has various data sources":
//! recommendation, e-commerce, e-learning).
//!
//! This example builds a retail-analytics world *by hand* (no MVQA
//! generator): a product knowledge graph plus store-camera scenes, then
//! asks cross-source questions through both the NL front-end and the
//! programmatic [`svqa::qparser::QueryBuilder`].
//!
//! ```text
//! cargo run -p svqa --example custom_domain --release
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use svqa::executor::executor::QueryGraphExecutor;
use svqa::qparser::{Dependency, QueryBuilder};
use svqa::vision::scene::{SceneBuilder, SyntheticImage};
use svqa::{Svqa, SvqaConfig};
use svqa_graph::GraphBuilder;

/// The store's product/ontology knowledge graph.
fn retail_kg() -> svqa_graph::Graph {
    let mut b = GraphBuilder::new();
    // Category ontology (the executor's semantic expansion rides on
    // "is a" edges).
    b.triple("laptop", "is a", "object")
        .triple("phone", "is a", "object")
        .triple("backpack", "is a", "object")
        .triple("bottle", "is a", "object")
        .triple("man", "is a", "person")
        .triple("woman", "is a", "person")
        .triple("child", "is a", "person")
        .triple("table", "is a", "furniture")
        .triple("chair", "is a", "furniture");
    b.build()
}

/// Store-camera frames: customers browsing display tables.
fn store_frames() -> Vec<SyntheticImage> {
    let mut rng = StdRng::seed_from_u64(2024);
    let mut frames = Vec::new();
    for id in 0..120u32 {
        let mut b = SceneBuilder::new(id, &mut rng);
        // A display table with a product on it.
        let table = b.add_object("table");
        let product = b.add_object_from(&["laptop", "phone", "backpack", "bottle"]);
        b.relate(product, "on", table);
        // A customer near the table, sometimes picking the product up.
        let customer = b.add_object_from(&["man", "woman", "child"]);
        b.relate(customer, "near", table);
        if id % 3 == 0 {
            b.relate(customer, "holding", product);
        }
        frames.push(b.build());
    }
    frames
}

fn main() {
    let kg = retail_kg();
    let frames = store_frames();
    println!(
        "retail world: {} camera frames, {}-vertex knowledge graph",
        frames.len(),
        kg.vertex_count()
    );
    let system = Svqa::build(&frames, &kg, SvqaConfig::default());

    // --- Natural-language front-end -----------------------------------
    for q in [
        "How many children are holding the phone?",
        "Does the woman appear near the table?",
        "What kind of objects is held by the man that is near the table?",
    ] {
        match system.answer_explained(q) {
            Ok((answer, explanation)) => {
                println!("\nQ: {q}\nA: {answer}");
                for fact in explanation.answer_support().iter().take(3) {
                    println!("   {}", fact.display());
                }
            }
            Err(e) => println!("\nQ: {q}\nA: <error: {e}>"),
        }
    }

    // --- Programmatic front-end (no NLP) -------------------------------
    // "Which product category do customers who linger near tables pick up
    // most?" — built structurally.
    let gq = QueryBuilder::reasoning()
        .clause("person", "holding", "object")
        .asks_kind_of_object()
        .clause("person", "near", "table")
        .depend(1, 0, Dependency::S2S)
        .describe("most-picked-up product by browsing customers")
        .build()
        .expect("well-formed query");
    let executor = QueryGraphExecutor::new(system.merged_graph());
    let answer = executor.execute(&gq).expect("executes");
    println!("\nstructured query: {}", gq.question);
    println!("A: {answer}");
}
