//! Streaming ingestion — the data-lake scenario of the paper's §I.
//!
//! Builds the system on an initial corpus, answers a question, then
//! streams in new batches of images with [`svqa::Svqa::add_images`] and
//! watches the answer change as new evidence arrives. Also demonstrates
//! the aggregator-level [`svqa::aggregator::IncrementalMerger`], which
//! keeps Algorithm 1's subgraph cache alive across batches.
//!
//! ```text
//! cargo run -p svqa --example incremental_stream --release
//! ```

use svqa::aggregator::{AggregatorConfig, IncrementalMerger};
use svqa::dataset::{build_knowledge_graph, generate_images};
use svqa::vision::prior::PairPrior;
use svqa::vision::sgg::{SceneGraphGenerator, SggConfig};
use svqa::{Svqa, SvqaConfig};

fn main() {
    let all_images = generate_images(1200, 2718);
    let (initial, stream) = all_images.split_at(400);
    let kg = build_knowledge_graph();

    println!("initial corpus: {} images", initial.len());
    let mut system = Svqa::build(initial, &kg, SvqaConfig::default());

    let question = "How many dogs are in the car?";
    let answer = system.answer(question).unwrap();
    println!("Q: {question}");
    println!("A (t=0): {answer}");

    // Stream the remaining images in batches of 200.
    for (batch_idx, batch) in stream.chunks(200).enumerate() {
        let links = system.add_images(batch);
        let answer = system.answer(question).unwrap();
        println!(
            "A (t={}, +{} images, {} new links): {answer}",
            batch_idx + 1,
            batch.len(),
            links
        );
    }
    let stats = system.build_stats();
    println!(
        "final merged graph: {} vertices, {} edges over {} scene graphs",
        stats.merged_vertices, stats.merged_edges, stats.scene_graphs
    );

    // The aggregator-level incremental path, with cache accounting.
    println!("\nAlgorithm-1 incremental merger:");
    let prior = PairPrior::fit(&all_images);
    let sgg = SceneGraphGenerator::new(SggConfig::default(), prior);
    let seed_graphs: Vec<_> = initial.iter().map(|i| sgg.generate(i).graph).collect();
    let mut merger = IncrementalMerger::new(AggregatorConfig::default(), &kg, &seed_graphs);
    for batch in stream.chunks(200) {
        let graphs: Vec<_> = batch.iter().map(|i| sgg.generate(i).graph).collect();
        let links = merger.attach_batch(&graphs);
        let (hits, misses) = merger.cache_stats();
        println!(
            "  +{} scene graphs: {links} links, cache {hits} hits / {misses} misses",
            graphs.len()
        );
    }
}
