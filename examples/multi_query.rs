//! Multi-query scheduling and key-centric caching — the paper's Figure 6.
//!
//! Runs a batch of questions through the §V-B optimized scheduler and
//! prints the frequency-sorted execution order, cache statistics, and the
//! latency difference against an uncached FIFO run.
//!
//! ```text
//! cargo run -p svqa --example multi_query --release
//! ```

use std::time::Instant;
use svqa::executor::cache::{CacheGranularity, EvictionPolicy};
use svqa::executor::scheduler::{QueryScheduler, SchedulerConfig};
use svqa::qparser::QueryGraphGenerator;
use svqa::{Svqa, SvqaConfig};
use svqa_dataset::Mvqa;

fn main() {
    println!("building a 1,500-image world...");
    let mvqa = Mvqa::generate_small(1500, 42);
    let system = Svqa::build(&mvqa.images, &mvqa.kg, SvqaConfig::default());

    // A batch with deliberately shared SPOC vertices (Fig. 6's premise).
    let questions: Vec<&str> = mvqa
        .questions
        .iter()
        .map(|q| q.question.as_str())
        .collect();

    let generator = QueryGraphGenerator::new();
    let graphs: Vec<_> = questions
        .iter()
        .filter_map(|q| generator.generate(q).ok())
        .collect();
    println!("parsed {} of {} questions", graphs.len(), questions.len());

    // The frequency-ratio ordering.
    let order = QueryScheduler::order(&graphs);
    println!(
        "scheduler order (first 10 of {}): {:?}",
        order.len(),
        &order[..order.len().min(10)]
    );

    // Uncached FIFO vs cached frequency-sorted.
    let run = |granularity, frequency_sort| {
        let scheduler = QueryScheduler::new(SchedulerConfig {
            granularity,
            policy: EvictionPolicy::Lfu,
            pool_size: 100,
            frequency_sort,
            ..SchedulerConfig::default()
        });
        let t0 = Instant::now();
        let report = scheduler.run(system.merged_graph(), &graphs);
        (t0.elapsed(), report)
    };

    let (t_plain, _) = run(CacheGranularity::None, false);
    let (t_cached, report) = run(CacheGranularity::Both, true);
    let stats = report.cache_stats;
    println!("\nno cache, FIFO order:          {t_plain:?}");
    println!("key-centric cache + schedule:  {t_cached:?}");
    println!(
        "reduction: {:.1}%  (paper reports ≈48.9%)",
        (1.0 - t_cached.as_secs_f64() / t_plain.as_secs_f64()) * 100.0
    );
    println!(
        "cache stats: scope {} hits / {} misses, path {} hits / {} misses ({:.0}% hit overall)",
        stats.scope_hits,
        stats.scope_misses,
        stats.path_hits,
        stats.path_misses,
        stats.hit_rate() * 100.0
    );

    // Parallel execution ("we parallelize our algorithm").
    let par = QueryScheduler::new(SchedulerConfig {
        threads: 4,
        ..SchedulerConfig::default()
    });
    let t0 = Instant::now();
    let preport = par.run(system.merged_graph(), &graphs);
    println!(
        "\n4-thread parallel run:         {:?} ({} answers)",
        t0.elapsed(),
        preport.answers.len()
    );
}
