//! Knowledge-graph and merged-graph explorer.
//!
//! Shows what the Data Aggregator (§III) actually builds: the external
//! knowledge graph, the per-image scene graphs, the Algorithm-1 subgraph
//! cache, and the linked merged graph — then walks an Example-1-style
//! reasoning chain by hand so the cross-source hops are visible.
//!
//! ```text
//! cargo run -p svqa --example knowledge_graph_explorer --release
//! ```

use svqa::aggregator::{AggregatorConfig, DataAggregator};
use svqa::dataset::{build_knowledge_graph, generate_images};
use svqa::vision::prior::PairPrior;
use svqa::vision::sgg::{SceneGraphGenerator, SggConfig};

fn main() {
    // The external knowledge graph.
    let kg = build_knowledge_graph();
    println!(
        "knowledge graph: {} vertices, {} edges",
        kg.vertex_count(),
        kg.edge_count()
    );
    println!("\nHarry Potter's neighbourhood:");
    let harry = kg.vertices_with_label("harry potter")[0];
    for (_, e) in kg.in_edges(harry) {
        println!(
            "  {} --{}--> harry potter",
            kg.vertex_label(e.src()).unwrap_or("?"),
            e.label()
        );
    }
    for (_, e) in kg.out_edges(harry) {
        println!(
            "  harry potter --{}--> {}",
            e.label(),
            kg.vertex_label(e.dst()).unwrap_or("?")
        );
    }

    // Scene graphs for a handful of images.
    let images = generate_images(300, 77);
    let prior = PairPrior::fit(&images);
    let sgg = SceneGraphGenerator::new(SggConfig::default(), prior);
    let scene_graphs: Vec<_> = images.iter().map(|i| sgg.generate(i).graph).collect();
    println!(
        "\ngenerated {} scene graphs ({} vertices, {} edges total)",
        scene_graphs.len(),
        scene_graphs.iter().map(|g| g.vertex_count()).sum::<usize>(),
        scene_graphs.iter().map(|g| g.edge_count()).sum::<usize>(),
    );

    // Algorithm 1 with the paper's parameters (c' = 5, k = 2).
    let aggregator = DataAggregator::new(AggregatorConfig::default());
    let merged = aggregator.merge(&scene_graphs, &kg);
    println!("\nAlgorithm 1 merge:");
    println!("  merged graph: {} vertices, {} edges", merged.graph.vertex_count(), merged.graph.edge_count());
    println!("  cached subgraphs: {}", merged.stats.cached_subgraphs);
    println!(
        "  cache hits/misses during attach: {}/{}",
        merged.stats.cache_hits, merged.stats.cache_misses
    );
    println!(
        "  {:.0}% of vertex types occur more than 5 times (paper: ≈58%)",
        merged.stats.fraction_labels_cached * 100.0
    );
    println!(
        "  {:.0}% of vertices covered by cached subgraphs (paper: ≈82%)",
        merged.stats.fraction_vertices_covered * 100.0
    );

    // Connectivity: cross-source reasoning needs the scene graphs linked
    // into the knowledge graph's component.
    let (_, components) = svqa::graph::connected_components(&merged.graph);
    let largest = svqa::graph::largest_component_size(&merged.graph);
    println!(
        "  connectivity: {} components; largest holds {} of {} vertices ({:.0}%)",
        components,
        largest,
        merged.graph.vertex_count(),
        100.0 * largest as f64 / merged.graph.vertex_count() as f64
    );

    // Walk a cross-source chain by hand: girlfriend → co-appearance → garment.
    println!("\ncross-source walk (Example 1 by hand):");
    let g = &merged.graph;
    let harry = g.vertices_with_label("harry potter")[0];
    for (_, e) in g.in_edges(harry).filter(|(_, e)| e.label() == "girlfriend of") {
        let girlfriend = e.src();
        let name = g.vertex_label(girlfriend).unwrap_or("?");
        println!("  {name} is harry potter's girlfriend (knowledge graph)");
        // Scene instances of the girlfriend via "same as" links.
        for (_, link) in g.out_edges(girlfriend).filter(|(_, e)| e.label() == "same as") {
            let instance = link.dst();
            let image = g
                .vertex(instance)
                .and_then(|v| v.props().get("image"))
                .and_then(|p| p.as_int());
            // Who appears near her in that image?
            for (_, rel) in g.in_edges(instance) {
                if rel.label() == "same as" {
                    continue;
                }
                println!(
                    "    image {:?}: {} --{}--> {name}",
                    image,
                    g.vertex_label(rel.src()).unwrap_or("?"),
                    rel.label()
                );
            }
        }
    }
}
