//! Scene-graph generation walkthrough — the paper's Figure 3.
//!
//! Builds the frisbee scene ("a dog jumping over the grass to catch a
//! frisbee, while a man watching from behind"), runs the detector and the
//! relation model with and without TDE, and prints both scene graphs so the
//! debiasing effect is visible.
//!
//! ```text
//! cargo run -p svqa --example scene_graph_demo --release
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use svqa::vision::prior::PairPrior;
use svqa::vision::scene::{SceneBuilder, SyntheticImage};
use svqa::vision::sgg::{SceneGraphGenerator, SggConfig};

fn frisbee_scene() -> SyntheticImage {
    let mut rng = StdRng::seed_from_u64(3);
    let mut b = SceneBuilder::new(1, &mut rng);
    let dog = b.add_object("dog");
    let grass = b.add_object("grass");
    let man = b.add_object("man");
    let frisbee = b.add_object("frisbee");
    let fence = b.add_object("fence");
    b.relate(dog, "jumping over", grass);
    b.relate(man, "behind", dog);
    b.relate(dog, "holding", frisbee);
    b.relate_anchored(man, "in front of", fence);
    b.build()
}

/// A biased "training corpus": dogs and men are overwhelmingly annotated
/// as merely "near" each other (the ubiquitous-predicate bias of §III-A).
fn biased_corpus() -> Vec<SyntheticImage> {
    let mut rng = StdRng::seed_from_u64(9);
    (0..80)
        .map(|i| {
            let mut b = SceneBuilder::new(100 + i, &mut rng);
            let dog = b.add_object("dog");
            let man = b.add_object("man");
            let grass = b.add_object("grass");
            b.relate(dog, "near", man);
            b.relate(dog, "near", grass);
            b.build()
        })
        .collect()
}

fn print_graph(title: &str, graph: &svqa::graph::Graph) {
    println!("\n--- {title} ---");
    for (_, e) in graph.edges() {
        let score = e
            .props()
            .get("score")
            .and_then(|p| p.as_float())
            .unwrap_or(0.0);
        println!(
            "  {{{}, {}, {}}}  (score {:.2})",
            graph.vertex_label(e.src()).unwrap_or("?"),
            e.label(),
            graph.vertex_label(e.dst()).unwrap_or("?"),
            score
        );
    }
}

fn main() {
    let image = frisbee_scene();
    println!("ground-truth scene (Fig. 3b): {}", image.caption);
    println!("objects:");
    for o in &image.objects {
        println!(
            "  {:10} bbox=({:.2},{:.2},{:.2},{:.2}) depth={:.2}",
            o.category, o.bbox.x, o.bbox.y, o.bbox.w, o.bbox.h, o.depth
        );
    }

    let prior = PairPrior::fit(&biased_corpus());

    // Original model (Fig. 3a): the ubiquitous-predicate bias shows.
    let original = SceneGraphGenerator::new(
        SggConfig {
            use_tde: false,
            edge_threshold: 0.05,
            ..SggConfig::default()
        },
        prior.clone(),
    );
    print_graph(
        "initial links, Original model (Fig. 3a)",
        &original.generate(&image).graph,
    );

    // TDE-debiased (Fig. 3c): explicit predicates recovered.
    let tde = SceneGraphGenerator::new(
        SggConfig {
            use_tde: true,
            ..SggConfig::default()
        },
        prior,
    );
    print_graph(
        "TDE-debiased links (Fig. 3c)",
        &tde.generate(&image).graph,
    );
}
