//! Error analysis — the paper's Figure 8.
//!
//! Demonstrates the three failure modes the paper attributes accuracy
//! drops to:
//!   (a) statement parsing — "canis" tagged as a foreign word,
//!   (b) object detection — a toy bear recognized as a bear,
//!   (c) relationship generation — a predicate confused for a neighbour.
//!
//! ```text
//! cargo run -p svqa --example error_analysis --release
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use svqa::nlp::{PosTagger, RuleDependencyParser};
use svqa::qparser::QueryGraphGenerator;
use svqa::vision::detector::{Detector, DetectorConfig};
use svqa::vision::scene::SceneBuilder;

fn main() {
    // --- (a) Fig. 8a: statement parsing error -------------------------
    println!("=== Fig. 8a — statement parsing ===");
    let q = "Does the kind of canis that is sitting on the bed appear in front of the vehicle?";
    println!("Q: {q}");
    let tagger = PosTagger::new();
    let tagged = tagger.tag(q);
    let tags: Vec<String> = tagged
        .iter()
        .map(|t| format!("{}/{}", t.token.text, t.tag))
        .collect();
    println!("POS: {}", tags.join(" "));
    println!("  → note canis/FW: the tagger treats the Latinate word as foreign,");
    println!("    so the noun phrase the query needs is never built.");
    match QueryGraphGenerator::new().generate(q) {
        Ok(gq) => {
            println!("  query graph still built, but degraded:");
            for v in &gq.vertices {
                println!("    {}", v.display());
            }
        }
        Err(e) => println!("  query-graph generation failed: {e}"),
    }

    // --- (b) Fig. 8b: object detection error --------------------------
    println!("\n=== Fig. 8b — object detection ===");
    let mut rng = StdRng::seed_from_u64(8);
    let mut b = SceneBuilder::new(0, &mut rng);
    let bear = b.add_object("teddy bear");
    b.set_attribute(bear, "kind", "toy");
    let couch = b.add_object("couch");
    b.relate(bear, "sitting on", couch);
    let image = b.build();
    let detector = Detector::new(DetectorConfig::default());
    let mut confused = 0;
    let trials = 100;
    for seed in 0..trials {
        let mut rng = StdRng::seed_from_u64(seed);
        let ds = detector.detect(&image, &mut rng);
        if ds.iter().any(|d| d.label == "bear") {
            confused += 1;
        }
    }
    println!("ground truth: a TOY bear (teddy bear) sitting on a couch");
    println!(
        "detector output over {trials} trials: recognized as a real 'bear' {confused} times"
    );
    println!("  → the classifier cannot see the 'toy' attribute; the scene graph");
    println!("    then claims a bear in the living room, exactly as in the paper.");

    // --- (c) Fig. 8c: relationship generation error -------------------
    println!("\n=== Fig. 8c — relationship generation ===");
    let mut rng = StdRng::seed_from_u64(80);
    let mut b = SceneBuilder::new(1, &mut rng);
    let bear2 = b.add_object("teddy bear");
    let tv = b.add_object("tv");
    b.relate(bear2, "on", tv); // ground truth: the bear is ON the tv
    let image = b.build();
    let prior = svqa::vision::prior::PairPrior::uniform();
    let sgg = svqa::vision::sgg::SceneGraphGenerator::new(
        svqa::vision::sgg::SggConfig {
            detector: DetectorConfig {
                bbox_jitter: 0.35, // a badly localized box ruins the geometry
                ..DetectorConfig::default()
            },
            ..svqa::vision::sgg::SggConfig::default()
        },
        prior,
    );
    let out = sgg.generate(&image);
    println!("ground truth: {{teddy bear, on, tv}}");
    print!("predicted scene graph: ");
    let labels: Vec<String> = out
        .graph
        .edges()
        .map(|(_, e)| {
            format!(
                "{{{}, {}, {}}}",
                out.graph.vertex_label(e.src()).unwrap_or("?"),
                e.label(),
                out.graph.vertex_label(e.dst()).unwrap_or("?")
            )
        })
        .collect();
    println!("{}", labels.join(", "));
    println!("  → with a poorly localized box the contact evidence vanishes and a");
    println!("    depth/offset predicate like 'in front of' wins — Fig. 8c's error.");

    // Show the parse still works for clean wording, for contrast.
    println!("\n=== control: the same question with common wording ===");
    let clean = "Does the kind of dog that is sitting on the bed appear in front of the vehicle?";
    match RuleDependencyParser::new().parse(&tagger.tag(clean)) {
        Ok(tree) => println!("parsed cleanly, root = {:?}", tree.text(tree.root())),
        Err(e) => println!("unexpected failure: {e}"),
    }
}
